"""The VBE ripple-carry adder (Vedral, Barenco, Ekert 1996) — prop 2.2.

The adder is built from the CARRY and SUM gates of fig. 4:

* ``CARRY(c_k, x_k, y_k, c_{k+1})`` maps
  ``|c_k, x_k, y_k, c_{k+1}>  ->  |c_k, x_k, y_k ^ x_k, c_{k+1} ^ maj(x_k, y_k, c_k)>``
  using 2 Toffolis and 1 CNOT;
* ``SUM(c_k, x_k, y_k)`` maps ``y_k -> y_k ^ x_k ^ c_k`` using 2 CNOTs.

Exact resources of :func:`emit_vbe_add` (n-bit addition):
``4n - 2`` Toffoli, ``4n`` CNOT, ``n`` carry ancillas.  (The paper's Table 2
rounds this to ``4n`` Toffoli / ``4n + 4`` CNOT; see
``repro.resources.formulas`` for the side-by-side record.)

The module also provides the VBE-flavoured comparator used by Table 1's
"(4 adder) VBE" row: a half carry-chain (compute carries, copy the top
carry, uncompute), costing ``4m`` Toffolis for ``m``-bit operands.
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit

__all__ = [
    "emit_carry",
    "emit_carry_adj",
    "emit_sum",
    "emit_vbe_add",
    "emit_vbe_compare_gt",
    "vbe_add_ancillas",
    "vbe_compare_ancillas",
]


def emit_carry(circ: Circuit, c: int, x: int, y: int, c_next: int) -> None:
    """Fig. 4 CARRY: y ^= x and c_next ^= maj(x, y, c)."""
    circ.ccx(x, y, c_next)
    circ.cx(x, y)
    circ.ccx(c, y, c_next)


def emit_carry_adj(circ: Circuit, c: int, x: int, y: int, c_next: int) -> None:
    """Adjoint of :func:`emit_carry` (CARRY is its own inverse reversed)."""
    circ.ccx(c, y, c_next)
    circ.cx(x, y)
    circ.ccx(x, y, c_next)


def emit_sum(circ: Circuit, c: int, x: int, y: int) -> None:
    """Fig. 4 SUM: y ^= x ^ c."""
    circ.cx(x, y)
    circ.cx(c, y)


def vbe_add_ancillas(n: int) -> int:
    """Carry ancillas required by :func:`emit_vbe_add`."""
    return n


def emit_vbe_add(
    circ: Circuit, x: Sequence[int], y: Sequence[int], carries: Sequence[int]
) -> None:
    """Prop 2.2 (fig 5): |x>_n |y>_{n+1}  ->  |x>_n |x + y>_{n+1}.

    ``y`` must be one qubit longer than ``x``; on arbitrary ``y`` the circuit
    adds modulo ``2**(n+1)``, which the subtraction sandwich relies on.
    ``carries`` are ``n`` clean ancillas, returned clean.
    """
    n = len(x)
    if len(y) != n + 1:
        raise ValueError("y register must have n+1 qubits (one overflow qubit)")
    if len(carries) != n:
        raise ValueError("VBE adder needs n carry ancillas")
    chain = list(carries) + [y[n]]
    for i in range(n):
        emit_carry(circ, chain[i], x[i], y[i], chain[i + 1])
    circ.cx(x[n - 1], y[n - 1])
    emit_sum(circ, carries[n - 1], x[n - 1], y[n - 1])
    for i in range(n - 2, -1, -1):
        emit_carry_adj(circ, carries[i], x[i], y[i], carries[i + 1])
        emit_sum(circ, carries[i], x[i], y[i])


def vbe_compare_ancillas(m: int) -> int:
    """Carry ancillas (c_0 .. c_m) required by :func:`emit_vbe_compare_gt`."""
    return m + 1


def emit_vbe_compare_gt(
    circ: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    t: int,
    carries: Sequence[int],
    b_extra: int | None = None,
    ctrl: int | None = None,
) -> None:
    """t ^= [a > b] via a half carry-chain (VBE-flavoured comparator).

    Complements ``b`` and rides the carry chain of ``a + ~b``: the chain's
    carry-out is 1 iff ``a + (2^m - 1 - b) >= 2^m`` iff ``a > b``.  The chain
    is then uncomputed, so only ``t`` changes.

    ``b_extra`` implements remark 2.32: if given, the second operand is
    ``b + 2^m * b_extra`` and the carry copy becomes a Toffoli conditioned on
    ``b_extra`` being 0 (one extra Toffoli, two X, no extra ancilla).
    ``ctrl`` makes the comparator controlled (the copy becomes a Toffoli);
    mutually exclusive with ``b_extra``.
    """
    m = len(a)
    if len(b) != m:
        raise ValueError("comparator operands must have equal width")
    if len(carries) != m + 1:
        raise ValueError("VBE comparator needs m+1 carry ancillas")
    if b_extra is not None and ctrl is not None:
        raise ValueError("b_extra and ctrl cannot be combined")
    for q in b:
        circ.x(q)
    for i in range(m):
        emit_carry(circ, carries[i], a[i], b[i], carries[i + 1])
    if ctrl is not None:
        circ.ccx(ctrl, carries[m], t)
    elif b_extra is None:
        circ.cx(carries[m], t)
    else:
        circ.x(b_extra)
        circ.ccx(b_extra, carries[m], t)
        circ.x(b_extra)
    for i in range(m - 1, -1, -1):
        emit_carry_adj(circ, carries[i], a[i], b[i], carries[i + 1])
    for q in b:
        circ.x(q)
