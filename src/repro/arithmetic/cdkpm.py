"""The CDKPM ripple-carry adder (Cuccaro, Draper, Kutin, Petrie Moulton
2004) — prop 2.3 — plus its controlled variant (thm 2.12) and the
half-subtractor comparator (props 2.27 / 2.30).

Gates (figs 6-7):

* ``MAJ(c, y, x)``: ``|c, y, x> -> |c^x, y^x, maj(x, y, c)>``
  (2 CNOT + 1 Toffoli);
* ``UMA(c, y, x)`` (2-CNOT form): inverse of MAJ composed with the sum
  write-out, ``-> |c, y^x^c, x>``;
* ``UMA3``: the 3-CNOT variant of fig. 7 (better parallelism, same
  function, +2 X);
* ``C-UMA`` (fig 16): the controlled unmajority used by the 1-ancilla
  controlled adder of thm 2.12.

Exact resources:

* :func:`emit_cdkpm_add`       — ``2n`` Toffoli, ``4n + 1`` CNOT, 1 ancilla
  (matches Table 2 exactly);
* :func:`emit_cdkpm_add_controlled` — ``3n + 1`` Toffoli, ``2n + 2`` CNOT,
  1 ancilla (paper: ``3n``; the +1 is the controlled overflow copy);
* :func:`emit_cdkpm_compare_gt` — ``2m`` Toffoli, ``4m + 1`` CNOT, ``2m`` X,
  1 ancilla (matches Table 6 exactly).
"""

from __future__ import annotations

from typing import Sequence

from ..circuits.circuit import Circuit

__all__ = [
    "emit_maj",
    "emit_maj_adj",
    "emit_uma",
    "emit_uma3",
    "emit_cuma",
    "emit_cdkpm_add",
    "emit_cdkpm_add_controlled",
    "emit_cdkpm_compare_gt",
    "cdkpm_add_ancillas",
    "cdkpm_compare_ancillas",
]


def emit_maj(circ: Circuit, c: int, y: int, x: int) -> None:
    """Fig. 6 MAJ: |c, y, x> -> |c^x, y^x, maj(x, y, c)>."""
    circ.cx(x, y)
    circ.cx(x, c)
    circ.ccx(c, y, x)


def emit_maj_adj(circ: Circuit, c: int, y: int, x: int) -> None:
    circ.ccx(c, y, x)
    circ.cx(x, c)
    circ.cx(x, y)


def emit_uma(circ: Circuit, c: int, y: int, x: int) -> None:
    """Fig. 7 UMA (2-CNOT form): restores c and x, writes the sum into y."""
    circ.ccx(c, y, x)
    circ.cx(x, c)
    circ.cx(c, y)


def emit_uma3(circ: Circuit, c: int, y: int, x: int) -> None:
    """Fig. 7 UMA (3-CNOT form): same function, friendlier depth (+2 X)."""
    circ.x(y)
    circ.cx(c, y)
    circ.ccx(c, y, x)
    circ.x(y)
    circ.cx(x, c)
    circ.cx(x, y)


def emit_cuma(circ: Circuit, ctrl: int, c: int, y: int, x: int) -> None:
    """Fig. 16 controlled-UMA: restores c and x; y ^= ctrl * (c ^ x).

    Combined with MAJ (fig 17) this writes the sum only when ``ctrl`` is set
    and restores ``y`` otherwise.  2 Toffoli + 2 CNOT.
    """
    circ.ccx(c, y, x)  # restore x
    circ.cx(x, y)  # y back to its input value
    circ.ccx(ctrl, c, y)  # y ^= ctrl * (c ^ x): c still holds c^x here
    circ.cx(x, c)  # restore c


def cdkpm_add_ancillas(n: int) -> int:
    return 1


def emit_cdkpm_add(
    circ: Circuit, x: Sequence[int], y: Sequence[int], c0: int
) -> None:
    """Prop 2.3 (fig 8): |x>_n |y>_{n+1} -> |x>_n |x + y>_{n+1}.

    ``c0`` is a single clean ancilla, returned clean.  Addition is modulo
    ``2**(n+1)`` on arbitrary ``y``.
    """
    n = len(x)
    if len(y) != n + 1:
        raise ValueError("y register must have n+1 qubits (one overflow qubit)")
    chain = [c0] + list(x)  # carry slot for position i is chain[i]
    for i in range(n):
        emit_maj(circ, chain[i], y[i], x[i])
    circ.cx(x[n - 1], y[n])
    for i in range(n - 1, -1, -1):
        emit_uma(circ, chain[i], y[i], x[i])


def emit_cdkpm_add_controlled(
    circ: Circuit, ctrl: int, x: Sequence[int], y: Sequence[int], c0: int
) -> None:
    """Thm 2.12: controlled n-bit addition with a single ancilla.

    MAJ chain as in the plain adder; the write-back uses C-UMA gates so the
    sum lands in ``y`` only when ``ctrl`` is set.  The overflow copy becomes
    a Toffoli.  ``3n + 1`` Toffoli total.
    """
    n = len(x)
    if len(y) != n + 1:
        raise ValueError("y register must have n+1 qubits (one overflow qubit)")
    chain = [c0] + list(x)
    for i in range(n):
        emit_maj(circ, chain[i], y[i], x[i])
    circ.ccx(ctrl, x[n - 1], y[n])
    for i in range(n - 1, -1, -1):
        emit_cuma(circ, ctrl, chain[i], y[i], x[i])


def cdkpm_compare_ancillas(m: int) -> int:
    return 1


def emit_cdkpm_compare_gt(
    circ: Circuit,
    a: Sequence[int],
    b: Sequence[int],
    t: int,
    c0: int,
    b_extra: int | None = None,
    ctrl: int | None = None,
) -> None:
    """Props 2.27 / 2.30: t ^= [a > b] with half a subtractor.

    Complements ``b``, runs the MAJ chain of ``a + ~b`` (the carry-out is 1
    iff ``a > b``), copies the carry into ``t``, and un-runs the chain.

    ``b_extra`` (remark 2.32) extends the second operand by a top qubit:
    the copy becomes a Toffoli fired only when ``b_extra`` is 0.
    ``ctrl`` (prop 2.30) makes the comparator controlled: the copy becomes
    a Toffoli on (ctrl, carry).  The two options are mutually exclusive.
    """
    m = len(a)
    if len(b) != m:
        raise ValueError("comparator operands must have equal width")
    if b_extra is not None and ctrl is not None:
        raise ValueError("b_extra and ctrl cannot be combined")
    for q in b:
        circ.x(q)
    chain = [c0] + list(a)
    for i in range(m):
        emit_maj(circ, chain[i], b[i], a[i])
    carry = a[m - 1]  # holds the carry-out after the chain
    if ctrl is not None:
        circ.ccx(ctrl, carry, t)
    elif b_extra is None:
        circ.cx(carry, t)
    else:
        circ.x(b_extra)
        circ.ccx(b_extra, carry, t)
        circ.x(b_extra)
    for i in range(m - 1, -1, -1):
        emit_maj_adj(circ, chain[i], b[i], a[i])
    for q in b:
        circ.x(q)
