"""Draper's QFT adder (Draper 2000) and Beauregard's constant variants —
props 2.5 / 2.17 / 2.20, cor 2.7, thms 2.13-2.14, and the QFT comparators
(props 2.26 / 2.36).

Conventions
-----------
The Fourier register ``phi`` of ``m`` qubits holds
``phi_i = (|0> + exp(2*pi*i*y / 2**(i+1)) |1>) / sqrt(2)`` on qubit ``i``
(little-endian, no bit-reversal swaps — our QFT writes the phases directly
in register order).  A ``phi`` register of ``n + 1`` qubits whose top qubit
started as 0 holds sums without losing the overflow.

Block markers: every QFT-sized block is delimited with ``circ.block(label)``
so the resource layer can count Table 1's Draper rows in QFT / PCQFT units
(``repro.resources.tables`` maps PhiADD-style blocks onto QFT units per
remark 2.6, and constant-rotation blocks onto PCQFT units).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..circuits.circuit import Circuit
from .gidney import emit_and, emit_and_uncompute

__all__ = [
    "emit_qft",
    "emit_iqft",
    "emit_phi_add",
    "emit_phi_sub",
    "emit_phi_add_const",
    "emit_phi_sub_const",
    "emit_cphi_add",
    "emit_cphi_add_const",
    "emit_cphi_sub_const",
    "emit_ccphi_add_const",
    "emit_draper_add",
    "emit_draper_add_controlled",
    "emit_draper_compare_gt",
    "emit_draper_compare_lt_const",
    "QFT_UNIT_LABELS",
    "PCQFT_UNIT_LABELS",
]

_TWO_PI = 2.0 * math.pi

# Labels whose cost is bounded by one QFT_{m} (remark 2.6).
QFT_UNIT_LABELS = frozenset(
    {"QFT", "IQFT", "PhiADD", "PhiSUB", "CPhiADD", "CPhiSUB"}
)
# Classically-determined rotation blocks (the paper's "PCQFT" unit).
PCQFT_UNIT_LABELS = frozenset(
    {"PhiADD(a)", "PhiSUB(a)", "CPhiADD(a)", "CPhiSUB(a)", "CCPhiADD(a)"}
)


def _theta(k: int) -> float:
    """theta_k = 2*pi / 2**k (fig 3)."""
    return _TWO_PI / (1 << k)


def emit_qft(circ: Circuit, qubits: Sequence[int]) -> None:
    """QFT without final swaps: |y> -> prod_i (|0> + e^{2 pi i y/2^{i+1}}|1>).

    Processing runs from the top qubit down so each target's controls are
    still in the computational basis.  m Hadamards, m(m-1)/2 C-R gates
    (remark 1.1).
    """
    m = len(qubits)
    with circ.block("QFT"):
        for i in range(m - 1, -1, -1):
            circ.h(qubits[i])
            for j in range(i):
                circ.cphase(qubits[j], qubits[i], _theta(i - j + 1))


def emit_iqft(circ: Circuit, qubits: Sequence[int]) -> None:
    """Inverse of :func:`emit_qft`."""
    m = len(qubits)
    with circ.block("IQFT"):
        for i in range(m):
            for j in range(i - 1, -1, -1):
                circ.cphase(qubits[j], qubits[i], -_theta(i - j + 1))
            circ.h(qubits[i])


def emit_phi_add(
    circ: Circuit, x: Sequence[int], phi: Sequence[int], sign: int = 1
) -> None:
    """Prop 2.5 PhiADD: |x> |phi(y)> -> |x> |phi(y + sign*x)>.

    ``phi`` may be longer than ``x`` (typically n+1 vs n).  Rotations with
    an integer phase multiple are identities and are elided, giving the
    count of prop 2.5: {C-R(theta_1): n} u {C-R(theta_i): n+2-i}.
    """
    label = "PhiADD" if sign >= 0 else "PhiSUB"
    with circ.block(label):
        for i in range(len(phi)):
            for j in range(min(i + 1, len(x))):
                circ.cphase(x[j], phi[i], sign * _theta(i - j + 1))


def emit_phi_sub(circ: Circuit, x: Sequence[int], phi: Sequence[int]) -> None:
    """phi(y) -> phi(y - x): the adjoint of PhiADD."""
    emit_phi_add(circ, x, phi, sign=-1)


def emit_phi_add_const(
    circ: Circuit, phi: Sequence[int], a: int, sign: int = 1
) -> None:
    """Prop 2.17 (fig 19): phi(y) -> phi(y + sign*a) with bare rotations.

    One single-qubit rotation per phi qubit (eq. 7), merged per target; this
    is the paper's PCQFT unit.  Zero ancillas, zero Toffolis.
    """
    label = "PhiADD(a)" if sign >= 0 else "PhiSUB(a)"
    with circ.block(label):
        for i in range(len(phi)):
            residue = a % (1 << (i + 1))
            if residue:
                circ.phase(phi[i], sign * _TWO_PI * residue / (1 << (i + 1)))


def emit_phi_sub_const(circ: Circuit, phi: Sequence[int], a: int) -> None:
    emit_phi_add_const(circ, phi, a, sign=-1)


def emit_cphi_add_const(
    circ: Circuit, ctrl: int, phi: Sequence[int], a: int, sign: int = 1
) -> None:
    """Prop 2.20: controlled constant addition in the Fourier basis.

    Each merged rotation gains one control; zero ancillas.
    """
    label = "CPhiADD(a)" if sign >= 0 else "CPhiSUB(a)"
    with circ.block(label):
        for i in range(len(phi)):
            residue = a % (1 << (i + 1))
            if residue:
                circ.cphase(ctrl, phi[i], sign * _TWO_PI * residue / (1 << (i + 1)))


def emit_cphi_sub_const(circ: Circuit, ctrl: int, phi: Sequence[int], a: int) -> None:
    emit_cphi_add_const(circ, ctrl, phi, a, sign=-1)


def emit_ccphi_add_const(
    circ: Circuit, c1: int, c2: int, phi: Sequence[int], a: int, sign: int = 1
) -> None:
    """Fig 23's doubly controlled constant rotation block (ccphase gates)."""
    with circ.block("CCPhiADD(a)"):
        for i in range(len(phi)):
            residue = a % (1 << (i + 1))
            if residue:
                circ.ccphase(c1, c2, phi[i], sign * _TWO_PI * residue / (1 << (i + 1)))


def emit_cphi_add(
    circ: Circuit,
    ctrl: int,
    x: Sequence[int],
    phi: Sequence[int],
    anc: int,
    sign: int = 1,
) -> None:
    """Thm 2.14: controlled PhiADD with a single ancilla and n Toffolis.

    Rotations sharing the control ``x_j`` are grouped: a temporary
    logical-AND computes ``ctrl AND x_j`` into ``anc``, the group of
    rotations fires off ``anc``, and the AND is uncomputed by measurement.
    """
    label = "CPhiADD" if sign >= 0 else "CPhiSUB"
    with circ.block(label):
        for j in range(len(x)):
            emit_and(circ, ctrl, x[j], anc)
            for i in range(j, len(phi)):
                circ.cphase(anc, phi[i], sign * _theta(i - j + 1))
            emit_and_uncompute(circ, ctrl, x[j], anc)


def emit_draper_add(
    circ: Circuit, x: Sequence[int], y: Sequence[int]
) -> None:
    """Cor 2.7: computational-basis Draper adder — QFT, PhiADD, IQFT."""
    if len(y) != len(x) + 1:
        raise ValueError("y register must have n+1 qubits (one overflow qubit)")
    emit_qft(circ, y)
    emit_phi_add(circ, x, y)
    emit_iqft(circ, y)


def emit_draper_add_controlled(
    circ: Circuit, ctrl: int, x: Sequence[int], y: Sequence[int], anc: int
) -> None:
    """Thms 2.13-2.14: only the central PhiADD needs the control."""
    if len(y) != len(x) + 1:
        raise ValueError("y register must have n+1 qubits (one overflow qubit)")
    emit_qft(circ, y)
    emit_cphi_add(circ, ctrl, x, y, anc)
    emit_iqft(circ, y)


def emit_draper_compare_gt(
    circ: Circuit, x: Sequence[int], y: Sequence[int], t: int, ctrl: int | None = None
) -> None:
    """Prop 2.26 (Draper/Beauregard comparator): t ^= [x > y].

    ``y`` has m+1 qubits with the top one 0 on input: the circuit computes
    ``y - x`` in the Fourier basis, reads the sign bit, and adds ``x`` back.
    With ``ctrl`` set, only the sign copy is controlled (the subtraction
    self-cancels), giving a controlled comparator for one extra Toffoli.
    """
    m = len(y) - 1
    if len(x) != m:
        raise ValueError("x must be one qubit shorter than y")
    emit_qft(circ, y)
    emit_phi_sub(circ, x, y)
    emit_iqft(circ, y)
    if ctrl is None:
        circ.cx(y[m], t)
    else:
        circ.ccx(ctrl, y[m], t)
    emit_qft(circ, y)
    emit_phi_add(circ, x, y)
    emit_iqft(circ, y)


def emit_draper_compare_lt_const(
    circ: Circuit, x: Sequence[int], a: int, t: int, top: int, ctrl: int | None = None
) -> None:
    """Prop 2.36: t ^= [x < a] for a classical constant ``a``.

    ``top`` is the single ancilla of the proposition: it extends ``x`` so
    the subtraction's sign bit is accessible.  Must be 0 on input.  With
    ``ctrl`` set the sign copy becomes a Toffoli: t ^= ctrl * [x < a]
    (note this differs from def 2.37's [x < ctrl*a] — see thm 2.38 for that
    form; the builders use whichever the enclosing construction needs).
    """
    full = list(x) + [top]
    emit_qft(circ, full)
    emit_phi_sub_const(circ, full, a)
    emit_iqft(circ, full)
    if ctrl is None:
        circ.cx(top, t)
    else:
        circ.ccx(ctrl, top, t)
    emit_qft(circ, full)
    emit_phi_add_const(circ, full, a)
    emit_iqft(circ, full)
