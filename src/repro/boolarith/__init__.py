"""Classical bit-string arithmetic reference model (paper appendix A)."""

from .bits import (
    bitstring_add,
    bitstring_sub,
    borrow_sequence,
    carry_sequence,
    compare_gt,
    decode_signed,
    encode_signed,
    from_bits,
    hamming_weight,
    maj,
    ones_complement,
    to_bits,
    twos_complement,
)

__all__ = [
    "maj",
    "to_bits",
    "from_bits",
    "hamming_weight",
    "ones_complement",
    "twos_complement",
    "bitstring_add",
    "bitstring_sub",
    "carry_sequence",
    "borrow_sequence",
    "compare_gt",
    "encode_signed",
    "decode_signed",
]
