"""Classical bit-string arithmetic — the paper's appendix A, executable.

These functions are the *reference model* the quantum circuits are tested
against: carry/borrow recursions (defs 1.2-1.5), 1's/2's complement, the
signed-integer encoding (remarks A.2/A.4), and the propositions A.1, A.3,
A.5, A.6 as checkable identities.

Bit strings are represented as Python ints together with an explicit width;
bit ``i`` has weight ``2**i`` (little-endian, matching the circuit registers).
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "maj",
    "to_bits",
    "from_bits",
    "hamming_weight",
    "ones_complement",
    "twos_complement",
    "bitstring_add",
    "bitstring_sub",
    "carry_sequence",
    "borrow_sequence",
    "compare_gt",
    "encode_signed",
    "decode_signed",
]


def maj(a: int, b: int, c: int) -> int:
    """Majority of three bits (eq. 5): 1 when at least two inputs are 1."""
    return (a & b) ^ (a & c) ^ (b & c)


def to_bits(value: int, width: int) -> List[int]:
    """Little-endian bit list of ``value`` (must fit in ``width`` bits)."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: List[int]) -> int:
    return sum(bit << i for i, bit in enumerate(bits))


def hamming_weight(value: int) -> int:
    """|a| — the number of 1 bits in the binary expansion (sec. 1.3)."""
    if value < 0:
        raise ValueError("Hamming weight defined for non-negative integers")
    return bin(value).count("1")


def ones_complement(value: int, width: int) -> int:
    """Definition 1.3: flip every bit of an n-bit string."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return value ^ ((1 << width) - 1)


def twos_complement(value: int, width: int) -> int:
    """Definition 1.4: 1's complement plus one (mod 2**width)."""
    return (ones_complement(value, width) + 1) % (1 << width)


def carry_sequence(x: int, y: int, width: int) -> List[int]:
    """Carries ``c_0..c_width`` of the bit-string addition (def 1.2)."""
    xb, yb = to_bits(x, width), to_bits(y, width)
    carries = [0]
    for i in range(width):
        carries.append(maj(xb[i], yb[i], carries[i]))
    return carries


def bitstring_add(x: int, y: int, width: int) -> int:
    """Definition 1.2: (width+1)-bit sum of two width-bit strings."""
    xb, yb = to_bits(x, width), to_bits(y, width)
    carries = carry_sequence(x, y, width)
    bits = [xb[i] ^ yb[i] ^ carries[i] for i in range(width)]
    bits.append(carries[width])
    return from_bits(bits)


def borrow_sequence(x: int, y: int, width: int) -> List[int]:
    """Borrows ``b_0..b_width`` of the subtraction x - y (def 1.5, eq. 6)."""
    xb, yb = to_bits(x, width), to_bits(y, width)
    borrows = [0]
    for i in range(width):
        borrows.append(maj(xb[i] ^ 1, yb[i], borrows[i]))
    return borrows


def bitstring_sub(x: int, y: int, width: int) -> int:
    """Definition 1.5: (width+1)-bit difference x - y.

    Bitwise ``d_i = x_i ^ y_i ^ b_i`` with the borrow recursion; the top bit
    ``d_width = b_width`` is the sign (prop A.3: it is 1 iff x < y).
    """
    xb, yb = to_bits(x, width), to_bits(y, width)
    borrows = borrow_sequence(x, y, width)
    bits = [xb[i] ^ yb[i] ^ borrows[i] for i in range(width)]
    bits.append(borrows[width])
    return from_bits(bits)


def compare_gt(x: int, y: int) -> int:
    """Indicator 1[x > y] (def 2.24)."""
    return 1 if x > y else 0


def encode_signed(value: int, width: int) -> int:
    """Remark A.4: encode a signed integer in 2's complement on ``width`` bits.

    The representable range is [-2**(width-1), 2**(width-1) - 1].
    """
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{value} not representable on {width} signed bits")
    return value % (1 << width)


def decode_signed(bits_value: int, width: int) -> int:
    """Inverse of :func:`encode_signed`."""
    if bits_value < 0 or bits_value >= (1 << width):
        raise ValueError(f"{bits_value} does not fit in {width} bits")
    top = (bits_value >> (width - 1)) & 1
    return bits_value - (top << width)
