"""``python -m repro.verify`` — the budgeted differential fuzzer."""

from .cli import main

raise SystemExit(main())
