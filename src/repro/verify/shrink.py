"""Delta-debugging shrinker: reduce a failing circuit to a minimal reproducer.

:func:`shrink_circuit` takes a circuit and a *predicate* (``True`` when the
circuit still exhibits the failure — typically "the oracle reports the same
(kind, transform) signature") and greedily minimizes the operation stream:

1. **Chunk removal** (ddmin-style): remove contiguous spans of top-level
   operations, halving the span size from ``len/2`` down to 1.
2. **Structural reduction**: hoist a :class:`~repro.circuits.ops.Conditional`
   body into its parent, and delete single operations *inside*
   Conditional/MBU bodies at any nesting depth (one atomic change per
   candidate, so every step is predicate-verified).
3. Repeat to a fixpoint (or the evaluation budget).

Every candidate is rebuilt on the original circuit's register/bit shell via
``Circuit.copy_empty()`` — removing operations can never produce an invalid
circuit (conditionals on never-written bits simply read 0), so the search
space needs no repair step.  A predicate that *raises* is treated as "does
not reproduce": the shrinker never trades the original failure for a
different crash.

:func:`render_regression_test` turns the minimal circuit into a paste-ready
pytest module that rebuilds the circuit literally and re-runs the oracle —
the artifact a CI fuzz failure uploads (see ``docs/verification.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.ops import (
    Annotation,
    Conditional,
    Gate,
    MBUBlock,
    Measurement,
    Operation,
    iter_flat,
)

__all__ = ["ShrinkResult", "shrink_circuit", "render_regression_test"]

Predicate = Callable[[Circuit], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    circuit: Circuit
    rounds: int
    evaluations: int
    initial_ops: int
    final_ops: int

    @property
    def reduction(self) -> float:
        """Fraction of (flattened) operations removed."""
        if self.initial_ops == 0:
            return 0.0
        return 1.0 - self.final_ops / self.initial_ops


def _op_count(ops: Sequence[Operation]) -> int:
    return sum(1 for _ in iter_flat(list(ops)))


def _rebuild(shell: Circuit, ops: Sequence[Operation]) -> Circuit:
    out = shell.copy_empty(f"shrunk({shell.name})" if shell.name else "shrunk")
    out.extend(ops)
    return out


def _structural_variants(ops: Tuple[Operation, ...]) -> Iterator[Tuple[Operation, ...]]:
    """Single-change reductions: hoist a conditional body, or delete one
    operation anywhere inside a Conditional/MBU body (recursively)."""
    for i, op in enumerate(ops):
        rest = ops[:i], ops[i + 1 :]
        if isinstance(op, Conditional):
            yield rest[0] + op.body + rest[1]  # hoist the body
            for j in range(len(op.body)):
                smaller = op.body[:j] + op.body[j + 1 :]
                yield rest[0] + (
                    Conditional(op.bit, smaller, op.value, op.probability),
                ) + rest[1]
            for inner in _structural_variants(op.body):
                yield rest[0] + (
                    Conditional(op.bit, inner, op.value, op.probability),
                ) + rest[1]
        elif isinstance(op, MBUBlock):
            for j in range(len(op.body)):
                smaller = op.body[:j] + op.body[j + 1 :]
                yield rest[0] + (MBUBlock(op.qubit, op.bit, smaller),) + rest[1]
            for inner in _structural_variants(op.body):
                yield rest[0] + (MBUBlock(op.qubit, op.bit, inner),) + rest[1]


def shrink_circuit(
    circuit: Circuit,
    predicate: Predicate,
    *,
    max_evaluations: int = 4000,
) -> ShrinkResult:
    """Minimize ``circuit`` while ``predicate`` keeps returning ``True``.

    Raises :class:`ValueError` if the predicate does not hold on the input
    (nothing to shrink — the caller's failure is not reproducible).
    """
    evaluations = 0

    def holds(ops: Sequence[Operation]) -> bool:
        nonlocal evaluations
        if evaluations >= max_evaluations:
            return False
        evaluations += 1
        try:
            return bool(predicate(_rebuild(circuit, ops)))
        except Exception:
            return False  # a different crash is not the same failure

    ops: Tuple[Operation, ...] = tuple(circuit.ops)
    initial = _op_count(ops)
    if not holds(ops):
        raise ValueError("predicate does not hold on the input circuit")

    rounds = 0
    changed = True
    while changed and evaluations < max_evaluations:
        changed = False
        rounds += 1
        # 1. chunked top-level removal, coarse to fine
        chunk = max(1, len(ops) // 2)
        while chunk >= 1:
            i = 0
            while i < len(ops):
                candidate = ops[:i] + ops[i + chunk :]
                if len(candidate) < len(ops) and holds(candidate):
                    ops = candidate
                    changed = True
                else:
                    i += chunk
            chunk //= 2
        # 2. one structural reduction at a time, restarting on success
        progress = True
        while progress and evaluations < max_evaluations:
            progress = False
            for candidate in _structural_variants(ops):
                if holds(candidate):
                    ops = candidate
                    changed = progress = True
                    break

    final = _rebuild(circuit, ops)
    return ShrinkResult(
        circuit=final,
        rounds=rounds,
        evaluations=evaluations,
        initial_ops=initial,
        final_ops=_op_count(ops),
    )


# --------------------------------------------------------------------------- #
# paste-ready regression test rendering


def _fmt_fraction(f: Fraction) -> str:
    return f"Fraction({f.numerator}, {f.denominator})"


def _render_op(op: Operation, indent: str, used: set) -> str:
    if isinstance(op, Gate):
        used.add("Gate")
        param = f", {op.param!r}" if op.param else ""
        return f"{indent}Gate({op.name!r}, {op.qubits!r}{param}),"
    if isinstance(op, Measurement):
        used.add("Measurement")
        return f"{indent}Measurement({op.qubit}, {op.bit}, {op.basis!r}),"
    if isinstance(op, Annotation):
        used.add("Annotation")
        return f"{indent}Annotation({op.kind!r}, {op.label!r}),"
    if isinstance(op, Conditional):
        used.add("Conditional")
        body = "\n".join(_render_op(inner, indent + "    ", used) for inner in op.body)
        prob = ""
        if op.probability != Fraction(1, 2):
            used.add("Fraction")
            prob = f", probability={_fmt_fraction(op.probability)}"
        return (
            f"{indent}Conditional({op.bit}, (\n{body}\n{indent}), "
            f"value={op.value}{prob}),"
        )
    if isinstance(op, MBUBlock):
        used.add("MBUBlock")
        body = "\n".join(_render_op(inner, indent + "    ", used) for inner in op.body)
        return f"{indent}MBUBlock({op.qubit}, {op.bit}, (\n{body}\n{indent})),"
    raise TypeError(f"cannot render operation {op!r}")  # pragma: no cover


def _compact_inputs(inputs: Mapping[str, Sequence[int]] | None) -> str:
    if not inputs:
        return "None"
    parts = []
    for name, values in inputs.items():
        values = list(values)
        if values and all(v == values[0] for v in values):
            parts.append(f"{name!r}: {values[0]}")
        else:
            parts.append(f"{name!r}: {values!r}")
    return "{" + ", ".join(parts) + "}"


def render_regression_test(
    circuit: Circuit,
    *,
    name: str = "reproducer",
    inputs: Mapping[str, Sequence[int]] | None = None,
    seed: int = 0,
    header: str = "",
    oracle_kwargs: Optional[Dict[str, object]] = None,
) -> str:
    """A self-contained pytest module re-running the oracle on ``circuit``.

    The output is deliberately paste-ready: drop it into ``tests/`` (or run
    it directly with pytest) and the failure replays with no other state.
    """
    used: set = set()
    op_lines: List[str] = [_render_op(op, "        ", used) for op in circuit.ops]

    reg_lines = [
        f"    circ.add_register({rname!r}, {len(reg)})"
        for rname, reg in circuit.registers.items()
    ]
    covered = sum(len(reg) for reg in circuit.registers.values())
    if covered < circuit.num_qubits:  # loose qubits outside any register
        reg_lines.append(
            f"    circ.add_register('_pad', {circuit.num_qubits - covered})"
        )
    bit_lines = (
        [f"    for _ in range({circuit.num_bits}):", "        circ.new_bit()"]
        if circuit.num_bits
        else []
    )

    extra = ""
    for key, value in (oracle_kwargs or {}).items():
        extra += f", {key}={value!r}"

    imports = []
    if "Fraction" in used:
        imports.append("from fractions import Fraction\n")
    op_names = sorted(used - {"Fraction"})
    imports.append("from repro.circuits import Circuit\n")
    if op_names:
        imports.append(f"from repro.circuits.ops import {', '.join(op_names)}\n")
    imports.append("from repro.verify import check_circuit\n")

    doc = "Auto-generated by repro.verify — shrunk failing circuit."
    if header:
        doc += "\n\n" + header
    doc += f"\n\nReplay:  REPRO_SEED={seed} python -m pytest this_file.py"

    body = "\n".join(
        ["    circ = Circuit('%s')" % name] + reg_lines + bit_lines
    )
    ops_block = "\n".join(op_lines)
    return (
        f'"""{doc}\n"""\n\n'
        + "".join(imports)
        + "\n\n"
        + f"def test_{name}():\n"
        + body
        + "\n    circ.extend([\n"
        + (ops_block + "\n" if ops_block else "")
        + "    ])\n"
        + f"    report = check_circuit(circ, inputs={_compact_inputs(inputs)}, "
        + f"seed={seed}{extra})\n"
        + "    assert report.ok, report.summary()\n"
    )
