"""Seeded random circuit generation for differential testing.

Five circuit *flavors* cover the vocabulary of the paper's constructions:

``unitary``
    Pure reversible circuits over {x, cx, ccx, swap, cswap, cz, s, t, z},
    optionally salted with adjacent temporary-AND compute/uncompute pairs.
    The only flavor the ``invert`` transform accepts (remark 2.23).
``mixed``
    Gates, phase gates, Z/X measurements, (nested) conditionals and MBU
    blocks whose correction bodies flip a garbage qubit — the full
    Lemma 4.1 vocabulary, exercised by the fused-VM equivalence tests.
``oracle``
    Compute a garbage bit through a random XOR oracle, then uncompute it
    coherently inside a marked ``uncompute-oracle`` region — the input
    shape the ``insert_mbu`` rewrite consumes.
``arithmetic``
    A circuit sampled from the :mod:`repro.arithmetic` /
    :mod:`repro.modular` builders (adders, comparators, modular adders,
    modular multiplication, with and without hand-built MBU), optionally
    extended with extra random mixed operations on its registers.
``noisy``
    A ``mixed`` circuit salted with bit-flip channel points
    (:func:`repro.noise.insert_noise_points`) plus a sampled
    ``noise_rate``/``noise_seed`` in ``meta`` — activates the oracle's
    ``noisy`` matrix column, so cross-strategy agreement is fuzzed *under
    injected faults* and shrunk reproducers carry the rate and seed.

Every generator is a pure function of a :class:`random.Random` stream (or
an integer seed through :func:`random_case`), so any failure is replayable
from its seed alone.  :func:`seed_sequence` is the shared seed-plumbing
helper for parametrized randomized tests: it honours the ``REPRO_SEED``
environment variable so one failing seed can be re-run in isolation (see
``tests/conftest.py`` and ``docs/verification.md``).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits import Circuit, uncompute_label
from ..circuits.ops import Conditional, Gate, Measurement

__all__ = [
    "FLAVORS",
    "GeneratorConfig",
    "GeneratedCase",
    "random_case",
    "random_mixed_circuit",
    "random_reversible_circuit",
    "random_oracle_circuit",
    "random_arithmetic_case",
    "random_lane_inputs",
    "seed_sequence",
    "ARITHMETIC_SPECS",
]

FLAVORS = ("mixed", "unitary", "oracle", "arithmetic", "noisy")

#: The arithmetic-builder sample space: (kind, n, params) triples resolved
#: through :data:`repro.pipeline.cache.BUILDERS`.  Only basis-state-
#: simulable rows (no Draper/QFT); kept tiny so a fuzz iteration stays
#: fast.  ``p``-carrying specs bound their data-register inputs to [0, p).
ARITHMETIC_SPECS: Tuple[Tuple[str, int, Tuple[Tuple[str, object], ...]], ...] = (
    ("adder", 3, (("family", "cdkpm"),)),
    ("adder", 3, (("family", "gidney"),)),
    ("subtractor", 3, (("family", "cdkpm"),)),
    ("comparator", 3, (("family", "gidney"),)),
    ("add_const", 3, (("a", 3), ("family", "cdkpm"),)),
    ("modadd", 3, (("p", 7), ("family", "vbe"), ("mbu", True))),
    ("modadd", 3, (("p", 5), ("family", "gidney"), ("mbu", True))),
    ("modadd", 4, (("p", 13), ("family", "cdkpm"), ("mbu", True))),
    ("modadd", 3, (("p", 7), ("family", "cdkpm"), ("mbu", False))),
    ("mul_const_mod", 3, (("p", 7), ("a", 3), ("mbu", True))),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of :func:`random_case` (see ``docs/verification.md``)."""

    flavor: str = "mixed"
    #: Data-register width in qubits (``unitary``/``oracle``: the ``a``
    #: register; ``mixed``: the ``d`` register).
    width: int = 6
    #: Garbage qubits available to MBU patterns (``mixed`` only).
    garbage: int = 2
    #: Top-level operation budget.
    ops: int = 30
    #: Simulation lanes the case's per-lane inputs are drawn for.
    batch: int = 32
    #: Extra random mixed operations appended to ``arithmetic`` circuits.
    arithmetic_extra_ops: int = 6

    def __post_init__(self) -> None:
        if self.flavor not in FLAVORS:
            raise ValueError(f"unknown flavor {self.flavor!r}; options: {FLAVORS}")
        if self.width < 3:
            raise ValueError("width must be at least 3 (ccx needs 3 qubits)")
        if self.batch < 1 or self.ops < 1:
            raise ValueError("batch and ops must be positive")


@dataclass
class GeneratedCase:
    """One generated differential-test case: circuit + per-lane inputs."""

    seed: int
    flavor: str
    circuit: Circuit
    #: Register name -> per-lane input values (all lists share one length,
    #: the case's batch).
    inputs: Dict[str, List[int]]
    #: Registers whose final values transform checks compare against the
    #: untransformed reference (ancillas excluded for arithmetic cases).
    data_registers: Tuple[str, ...] = ()
    #: No measurements/MBU anywhere — the ``invert`` transform applies.
    unitary: bool = False
    #: Carries ``uncompute-*`` reference markers — ``insert_mbu`` rewrites.
    marked: bool = False
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def batch(self) -> int:
        return len(next(iter(self.inputs.values()))) if self.inputs else 1


# --------------------------------------------------------------------------- #
# flavor generators (pure functions of an rng)


def random_mixed_circuit(
    rng: random.Random, n_ops: int = 40, *, width: int = 6, garbage: int = 2
) -> Circuit:
    """A random circuit mixing plain/phase gates, measurements, (nested)
    conditionals and MBU blocks whose bodies flip the garbage qubit.

    This is the canonical mixed-construct generator shared by
    ``tests/test_fused_vm.py`` and the fuzzer — registers ``d`` (``width``
    data qubits) and ``g`` (``garbage`` garbage qubits).
    """
    circ = Circuit(f"mixed[{n_ops}]")
    d = circ.add_register("d", width)
    g = circ.add_register("g", max(1, garbage))
    bits: list = []

    def random_gate(target_pool):
        kind = rng.choice(["x", "cx", "ccx", "swap", "cswap", "cz", "s", "t", "z"])
        arity = {"x": 1, "s": 1, "t": 1, "z": 1, "cx": 2, "cz": 2, "swap": 2,
                 "ccx": 3, "cswap": 3}[kind]
        qubits = rng.sample(target_pool, k=arity)
        return Gate(kind, tuple(qubits))

    def random_body(depth: int):
        body = []
        for _ in range(rng.randint(1, 4)):
            roll = rng.random()
            if roll < 0.7 or depth >= 2 or not bits:
                body.append(random_gate(list(d)))
            elif roll < 0.85:
                bit = circ.new_bit()
                body.append(Measurement(rng.choice(list(d)), bit,
                                        rng.choice(["z", "x"])))
                bits.append(bit)
            else:
                body.append(Conditional(rng.choice(bits), tuple(random_body(depth + 1)),
                                        value=rng.randint(0, 1)))
        return body

    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.55:
            circ.append(random_gate(list(d)))
        elif roll < 0.7:
            bit = circ.measure(rng.choice(list(d)), basis=rng.choice(["z", "x"]))
            bits.append(bit)
        elif roll < 0.85 and bits:
            circ.cond(rng.choice(bits), random_body(1), value=rng.randint(0, 1))
        else:
            # Dirty a garbage qubit, then measurement-based-uncompute it.
            q = rng.choice(list(g))
            a, b = rng.sample(list(d), k=2)
            circ.ccx(a, b, q)
            body = [Gate("h", (q,))]
            for _ in range(rng.randint(1, 3)):
                if rng.random() < 0.5:
                    body.append(Gate("cx", (rng.choice(list(d)), q)))
                else:
                    u, v = rng.sample(list(d), k=2)
                    body.append(Gate("ccx", (u, v, q)))
            body.extend([Gate("h", (q,)), Gate("x", (q,))])
            bits.append(circ.mbu(q, body))
    return circ


_REVERSIBLE_KINDS = {"x": 1, "cx": 2, "ccx": 3, "swap": 2, "cz": 2, "cswap": 3}


def random_reversible_circuit(
    rng: random.Random,
    n_ops: int,
    *,
    width: int = 5,
    unitary_only: bool = False,
) -> Circuit:
    """A random reversible circuit on register ``a``; unless
    ``unitary_only``, it also mixes in temporary-AND compute/uncompute
    patterns on a scratch ancilla (register ``anc``).

    The canonical generator behind the transform-semantics property tests
    (``tests/test_transform_semantics.py``).
    """
    circ = Circuit(f"reversible[{n_ops}]")
    a = circ.add_register("a", width)
    anc = None if unitary_only else circ.add_register("anc", 1)
    for i in range(n_ops):
        kind = rng.choice(list(_REVERSIBLE_KINDS))
        qubits = [a[q] for q in rng.sample(range(width), k=_REVERSIBLE_KINDS[kind])]
        getattr(circ, kind)(*qubits)
        if anc is not None and i % 7 == 6:
            u, v = rng.sample(range(width), k=2)
            circ.ccx(a[u], a[v], anc[0])  # temp AND compute
            circ.ccx(a[u], a[v], anc[0])  # coherent uncompute (adjacent pair)
    return circ


def random_oracle_circuit(
    rng: random.Random,
    *,
    width: int = 5,
    terms: int = 3,
) -> Circuit:
    """Compute a garbage bit from random data through an XOR oracle, then
    uncompute it coherently inside a marked ``uncompute-oracle`` region —
    exactly the shape the ``insert_mbu`` pass rewrites into an MBU block.
    """
    circ = Circuit("oracle")
    a = circ.add_register("a", width)
    g = circ.add_register("g", 1)

    pairs = [rng.sample(range(width), k=2) for _ in range(terms)]
    singles = [rng.randrange(width) for _ in range(rng.randint(1, 2))]

    def oracle():
        for u, v in pairs:
            circ.ccx(a[u], a[v], g[0])
        for s in singles:
            circ.cx(a[s], g[0])

    oracle()  # compute garbage
    label = uncompute_label("uncompute-oracle", g[0])
    circ.begin(label)
    oracle()  # coherent reference uncompute
    circ.end(label)
    return circ


def random_arithmetic_case(
    rng: random.Random, config: GeneratorConfig, seed: int
) -> GeneratedCase:
    """A sampled arithmetic-builder circuit with domain-valid random
    inputs, optionally extended with random mixed operations.

    Inputs respect the builder's domain (values mod ``p`` for modular
    rows) so the hand-built MBU uncomputations stay algebraically valid —
    the statevector cross-check runs the correction bodies literally.
    """
    from ..pipeline.cache import CircuitSpec, build_spec  # deferred: heavy layer

    kind, n, params = rng.choice(ARITHMETIC_SPECS)
    spec = CircuitSpec.make(kind, n, **dict(params))
    built = build_spec(spec)
    base = built.circuit
    circuit = base.copy_empty(f"arith[{spec.key},seed={seed}]")
    circuit.extend(base.ops)

    p = dict(params).get("p")
    data = tuple(
        name for name, reg in circuit.registers.items()
        if name not in built.ancilla_names and len(reg)
    )
    inputs: Dict[str, List[int]] = {}
    for name in data:
        reg = circuit.registers[name]
        limit = min(1 << len(reg), 1 << built.n)
        if p is not None and len(reg) >= built.n:
            limit = min(limit, p)
        inputs[name] = [rng.randrange(limit) for _ in range(config.batch)]

    # Salt the tail with random reversible gates on the data registers.
    pool = [q for name in data for q in circuit.registers[name]]
    for _ in range(rng.randint(0, config.arithmetic_extra_ops)):
        kinds = [k for k, arity in _REVERSIBLE_KINDS.items() if arity <= len(pool)]
        gate = rng.choice(kinds)
        qubits = rng.sample(pool, k=_REVERSIBLE_KINDS[gate])
        getattr(circuit, gate)(*qubits)

    return GeneratedCase(
        seed=seed, flavor="arithmetic", circuit=circuit, inputs=inputs,
        data_registers=data, unitary=False, marked=False,
        meta={"spec": spec.key},
    )


def random_lane_inputs(
    rng: random.Random,
    circuit: Circuit,
    batch: int,
    *,
    exclude: Sequence[str] = (),
    limits: Optional[Dict[str, int]] = None,
) -> Dict[str, List[int]]:
    """Random per-lane input values for every (non-excluded) register.

    ``limits`` caps the value range per register name (e.g. ``p`` for a
    modular row); otherwise the full ``2**len(register)`` range is used.
    """
    inputs: Dict[str, List[int]] = {}
    for name, reg in circuit.registers.items():
        if name in exclude or not len(reg):
            continue
        limit = 1 << len(reg)
        if limits and name in limits:
            limit = min(limit, limits[name])
        inputs[name] = [rng.randrange(limit) for _ in range(batch)]
    return inputs


# --------------------------------------------------------------------------- #
# the seeded entry point


def random_case(seed: int, config: GeneratorConfig | None = None) -> GeneratedCase:
    """Generate one differential-test case from an integer seed."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    if config.flavor == "mixed":
        circuit = random_mixed_circuit(
            rng, config.ops, width=config.width, garbage=config.garbage
        )
        inputs = random_lane_inputs(rng, circuit, config.batch, exclude=("g",))
        inputs["g"] = [0] * config.batch  # garbage starts clean
        return GeneratedCase(
            seed=seed, flavor="mixed", circuit=circuit, inputs=inputs,
            data_registers=("d",), unitary=False, marked=False,
        )
    if config.flavor == "noisy":
        from ..noise import insert_noise_points  # deferred: keep layering thin

        circuit = insert_noise_points(
            random_mixed_circuit(
                rng, config.ops, width=config.width, garbage=config.garbage
            )
        )
        inputs = random_lane_inputs(rng, circuit, config.batch, exclude=("g",))
        inputs["g"] = [0] * config.batch
        return GeneratedCase(
            seed=seed, flavor="noisy", circuit=circuit, inputs=inputs,
            data_registers=("d",), unitary=False, marked=False,
            meta={
                "noise_rate": rng.choice([0.05, 0.1, 0.25]),
                "noise_seed": rng.randrange(2**31),
            },
        )
    if config.flavor == "unitary":
        circuit = random_reversible_circuit(
            rng, config.ops, width=config.width, unitary_only=True
        )
        inputs = random_lane_inputs(rng, circuit, config.batch)
        return GeneratedCase(
            seed=seed, flavor="unitary", circuit=circuit, inputs=inputs,
            data_registers=tuple(circuit.registers), unitary=True, marked=False,
        )
    if config.flavor == "oracle":
        circuit = random_oracle_circuit(rng, width=config.width)
        inputs = random_lane_inputs(rng, circuit, config.batch, exclude=("g",))
        inputs["g"] = [0] * config.batch
        return GeneratedCase(
            seed=seed, flavor="oracle", circuit=circuit, inputs=inputs,
            data_registers=("a", "g"), unitary=True, marked=True,
        )
    return random_arithmetic_case(rng, config, seed)


# --------------------------------------------------------------------------- #
# seed plumbing for parametrized randomized tests

REPRO_SEED_ENV = "REPRO_SEED"


def seed_sequence(count: int, base: int = 0) -> List[int]:
    """Seeds for a parametrized randomized test, honouring ``REPRO_SEED``.

    Returns ``[base, base+1, ..., base+count-1]`` normally.  When the
    ``REPRO_SEED`` environment variable is set, returns just ``[int(env)]``
    so the one failing seed a test printed can be replayed in isolation::

        REPRO_SEED=7 python -m pytest tests/test_fused_vm.py -k mixed
    """
    env = os.environ.get(REPRO_SEED_ENV)
    if env is not None:
        return [int(env, 0)]
    return list(range(base, base + count))
