"""Command-line front end: ``python -m repro.verify`` / ``tools/fuzz.py``.

Runs the budgeted differential fuzzer (generator -> equivalence oracle ->
shrinker) and prints the (strategy × transform) coverage matrix.  Exit
status is 0 when every case agreed, 1 when a mismatch was found (the
shrunk reproducer is printed and, with ``--out``, written to disk — the CI
``fuzz-smoke`` job uploads that directory as an artifact).

Examples::

    python -m repro.verify --budget 10            # tier-1 smoke
    python -m repro.verify --iterations 8 --seed 3
    FUZZ_BUDGET=120 python -m repro.verify --budget "$FUZZ_BUDGET" --out fuzz-artifacts
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .fuzz import MATRIX_CELLS, run_fuzz
from .generate import FLAVORS

__all__ = ["main"]


def _parse(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.verify",
        description=(
            "Differential fuzzing of the execution-strategy ladder and the "
            "transform passes (see docs/verification.md)."
        ),
    )
    parser.add_argument("--budget", type=float, default=10.0,
                        help="wall-clock seconds to fuzz for (default 10)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="exact number of cases instead of a time budget")
    parser.add_argument("--seed", type=int, default=0,
                        help="session seed; per-case seeds are derived from it")
    parser.add_argument("--flavors", nargs="+", default=list(FLAVORS),
                        choices=list(FLAVORS), metavar="FLAVOR",
                        help=f"circuit flavors to rotate over (default: all of "
                             f"{', '.join(FLAVORS)})")
    parser.add_argument("--ops", type=int, default=30,
                        help="top-level operations per generated circuit")
    parser.add_argument("--width", type=int, default=6,
                        help="data-register width in qubits")
    parser.add_argument("--batch", type=int, default=32,
                        help="simulation lanes per case")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write shrunk reproducer tests into DIR")
    parser.add_argument("--keep-going", action="store_true",
                        help="keep fuzzing after the first failure")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of failing circuits")
    parser.add_argument("--require-full-matrix", action="store_true",
                        help="exit 1 unless every (strategy x transform) cell "
                             "was covered")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-iteration progress output")
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse(argv)
    stats = run_fuzz(
        budget=args.budget,
        iterations=args.iterations,
        seed=args.seed,
        flavors=tuple(args.flavors),
        ops=args.ops,
        width=args.width,
        batch=args.batch,
        out_dir=args.out,
        shrink=not args.no_shrink,
        stop_on_failure=not args.keep_going,
        log=None if args.quiet else print,
    )

    print(f"fuzz: {stats.iterations} cases in {stats.elapsed:.2f}s "
          f"({stats.checks} comparisons) — flavors {dict(stats.per_flavor)}")
    for line in stats.matrix_lines():
        print(line)

    if stats.failures:
        print(f"\n{len(stats.failures)} FAILURE(S):")
        for failure in stats.failures:
            print(f"  seed={failure.seed} flavor={failure.flavor} "
                  f"ops {failure.initial_ops} -> {failure.shrunk_ops}")
            print("  " + failure.summary.replace("\n", "\n  "))
            if failure.reproducer_path:
                print(f"  reproducer: {failure.reproducer_path}")
            else:
                print("  --- paste-ready regression test ---")
                print(failure.test_source)
        return 1

    if args.require_full_matrix:
        covered = set(stats.covered_cells())
        missing = [cell for cell in MATRIX_CELLS if cell not in covered]
        if missing:
            print(f"\nmatrix incomplete; uncovered cells: {missing}")
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
