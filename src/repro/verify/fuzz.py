"""The budgeted differential fuzz loop.

:func:`run_fuzz` generates random cases (round-robin over the requested
flavors, one SHA-256-derived seed per iteration), runs the equivalence
oracle on each, and accumulates the (strategy × column) coverage
matrix — every transform pass plus the ``noisy`` noise-injection column.  On a failure it shrinks the circuit to a minimal reproducer with
the *same failure signature* (the set of failed (kind, transform) cells)
and renders it as a paste-ready regression test — optionally written into
an artifact directory, which is what the CI ``fuzz-smoke`` job uploads.

Two budgets are supported: wall-clock seconds (``budget=``, the CI mode)
or an exact iteration count (``iterations=``, the deterministic test
mode).  The loop is reproducible end to end: ``seed`` fixes every case.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..pipeline.montecarlo import derive_seed
from .generate import FLAVORS, GeneratedCase, GeneratorConfig, random_case
from .oracle import NOISY, STRATEGIES, TRANSFORMS, check_case, check_circuit
from .shrink import render_regression_test, shrink_circuit

__all__ = ["FuzzFailure", "FuzzStats", "run_fuzz", "COLUMNS", "MATRIX_CELLS"]

#: Matrix columns: every transform pass plus the noise-injection column
#: (covered by the ``noisy`` flavor's cases).
COLUMNS: Tuple[str, ...] = TRANSFORMS + (NOISY,)

#: Every (strategy, column) cell the session-level matrix must cover.
MATRIX_CELLS: Tuple[Tuple[str, str], ...] = tuple(
    (s, t) for s in STRATEGIES for t in COLUMNS
)

#: Cell statuses that count as *covered* (a real differential check ran).
COVERING_STATUSES = frozenset({"agree", "reject"})


@dataclass
class FuzzFailure:
    """One oracle failure, shrunk and rendered."""

    seed: int
    flavor: str
    iteration: int
    summary: str
    signature: frozenset
    initial_ops: int
    shrunk_ops: int
    test_source: str
    reproducer_path: Optional[str] = None


@dataclass
class FuzzStats:
    """Everything one :func:`run_fuzz` session established."""

    iterations: int = 0
    elapsed: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)
    #: (strategy, transform) -> statuses observed across the session.
    matrix: Dict[Tuple[str, str], Set[str]] = field(default_factory=dict)
    checks: int = 0
    per_flavor: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def covered_cells(self) -> List[Tuple[str, str]]:
        return [
            cell for cell in MATRIX_CELLS
            if self.matrix.get(cell, set()) & COVERING_STATUSES
        ]

    def matrix_lines(self) -> List[str]:
        """The coverage matrix as a fixed-width text grid."""
        symbol = {"mismatch": "X", "agree": "A", "reject": "R", "lazy": "l",
                  "inapplicable": "-"}
        order = ("mismatch", "agree", "reject", "lazy", "inapplicable")
        width = max(len(t) for t in COLUMNS)
        lines = [" " * 13 + "  ".join(t.rjust(width) for t in COLUMNS)]
        for strategy in STRATEGIES:
            cells = []
            for transform in COLUMNS:
                statuses = self.matrix.get((strategy, transform), set())
                mark = "."
                for status in order:
                    if status in statuses:
                        mark = symbol[status]
                        break
                cells.append(mark.rjust(width))
            lines.append(f"{strategy:>12} " + "  ".join(cells))
        covered = len(self.covered_cells())
        lines.append(
            f"coverage: {covered}/{len(MATRIX_CELLS)} cells "
            "(A=agree R=consistent-reject X=MISMATCH l=lazy-only "
            "-=inapplicable .=unseen)"
        )
        return lines


def _shrink_failure(
    case: GeneratedCase,
    signature: frozenset,
    *,
    max_evaluations: int,
) -> Tuple[object, int, int]:
    """Shrink the case's circuit against its oracle failure signature."""

    def predicate(circuit) -> bool:
        report = check_circuit(
            circuit,
            case.inputs,
            seed=case.seed,
            batch=case.batch,
            data_registers=case.data_registers or None,
            unitary=case.unitary,
            noise_rate=case.meta.get("noise_rate", 0.0),
            noise_seed=case.meta.get("noise_seed", 0),
        )
        return bool(report.failure_signature() & signature)

    result = shrink_circuit(
        case.circuit, predicate, max_evaluations=max_evaluations
    )
    return result.circuit, result.initial_ops, result.final_ops


def run_fuzz(
    *,
    budget: float = 10.0,
    iterations: Optional[int] = None,
    seed: int = 0,
    flavors: Sequence[str] = FLAVORS,
    ops: int = 30,
    width: int = 6,
    batch: int = 32,
    out_dir: Optional[str] = None,
    shrink: bool = True,
    shrink_evaluations: int = 2000,
    stop_on_failure: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzStats:
    """Fuzz the backend ladder until the budget (or iteration count) runs out.

    ``iterations`` (when given) takes precedence over the wall-clock
    ``budget`` — the deterministic mode the tests use.  Returns the
    accumulated :class:`FuzzStats`; reproducers are written into
    ``out_dir`` when provided.
    """
    flavors = tuple(flavors)
    for flavor in flavors:
        if flavor not in FLAVORS:
            raise ValueError(f"unknown flavor {flavor!r}; options: {FLAVORS}")
    stats = FuzzStats()
    start = time.monotonic()
    say = log or (lambda _msg: None)
    i = 0
    while True:
        if iterations is not None:
            if i >= iterations:
                break
        elif time.monotonic() - start >= budget:
            break
        flavor = flavors[i % len(flavors)]
        case_seed = derive_seed("fuzz", seed, flavor, i)
        config = GeneratorConfig(flavor=flavor, ops=ops, width=width, batch=batch)
        case = random_case(case_seed, config)
        report = check_case(case)
        stats.iterations = i + 1
        stats.checks += report.checks
        stats.per_flavor[flavor] = stats.per_flavor.get(flavor, 0) + 1
        for cell, status in report.matrix.items():
            stats.matrix.setdefault(cell, set()).add(status)
        if not report.ok:
            say(f"[{i}] {flavor} seed={case_seed}: FAILURE — {report.summary()}")
            failure = _record_failure(
                case, report, i, out_dir,
                shrink=shrink, shrink_evaluations=shrink_evaluations, say=say,
            )
            stats.failures.append(failure)
            if stop_on_failure:
                break
        i += 1
    stats.elapsed = time.monotonic() - start
    return stats


def _record_failure(
    case: GeneratedCase,
    report,
    iteration: int,
    out_dir: Optional[str],
    *,
    shrink: bool,
    shrink_evaluations: int,
    say: Callable[[str], None],
) -> FuzzFailure:
    signature = report.failure_signature()
    circuit = case.circuit
    initial_ops = final_ops = sum(1 for _ in _flat(circuit))
    if shrink:
        try:
            circuit, initial_ops, final_ops = _shrink_failure(
                case, signature, max_evaluations=shrink_evaluations
            )
            say(f"    shrunk {initial_ops} -> {final_ops} ops")
        except ValueError:
            say("    failure did not reproduce under the shrinker; "
                "keeping the original circuit")
    kinds = ", ".join(sorted(f"{k}@{t}" for k, t in signature))
    # The rendered test must re-run the *same* oracle configuration the
    # failing case used — batch, compared data registers and the unitary
    # contract are part of the failure, not defaults to re-infer.
    oracle_kwargs: Dict[str, object] = {
        "batch": case.batch,
        "unitary": case.unitary,
    }
    if case.data_registers:
        oracle_kwargs["data_registers"] = tuple(case.data_registers)
    if "noise_rate" in case.meta:
        oracle_kwargs["noise_rate"] = case.meta["noise_rate"]
        oracle_kwargs["noise_seed"] = case.meta.get("noise_seed", 0)
    source = render_regression_test(
        circuit,
        name=f"fuzz_{case.flavor}_{case.seed}",
        inputs=case.inputs,
        seed=case.seed,
        header=(
            f"flavor={case.flavor} iteration={iteration} "
            f"failure signature: {kinds}"
        ),
        oracle_kwargs=oracle_kwargs,
    )
    path = None
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"reproducer_{case.flavor}_{case.seed}.py")
        with open(path, "w") as handle:
            handle.write(source)
        say(f"    reproducer written to {path}")
    return FuzzFailure(
        seed=case.seed,
        flavor=case.flavor,
        iteration=iteration,
        summary=report.summary(),
        signature=signature,
        initial_ops=initial_ops,
        shrunk_ops=final_ops,
        test_source=source,
        reproducer_path=path,
    )


def _flat(circuit):
    from ..circuits.ops import iter_flat

    return iter_flat(circuit.ops)
