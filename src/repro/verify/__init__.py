"""Differential verification: random circuits, an equivalence oracle, a shrinker.

Every layer of the backend ladder — the interpretive engine walk, the
scalar compiled VM, the fused codegen and stacked-array kernels — and every
registered :mod:`repro.transform` rewrite must preserve circuit semantics
for *all* measurement-outcome streams.  This package turns that claim into
a standing, systematic test harness instead of a pile of hand-rolled
randomized tests:

:mod:`repro.verify.generate`
    Seeded random circuit generator: mixed Gate/Conditional/MBUBlock/
    garbage circuits, pure reversible circuits, marked uncompute-oracle
    circuits and sampled :mod:`repro.arithmetic` builder circuits, with
    tunable width, depth and nesting.
:mod:`repro.verify.oracle`
    The equivalence oracle: runs a circuit through every execution
    strategy (classical, bitplane interpretive, compiled scalar, fused
    codegen, fused arrays) and every registered transform pipeline with
    scripted outcome providers, comparing final states, classical bits,
    executed-gate tallies, per-lane tallies and outcome-stream
    consumption.  Produces a coverage *matrix* over
    (strategy × transform) cells.
:mod:`repro.verify.shrink`
    Delta-debugging shrinker: reduces any failing circuit to a minimal
    reproducer and renders it as a paste-ready regression test.
:mod:`repro.verify.fuzz` / ``python -m repro.verify`` / ``tools/fuzz.py``
    The budgeted fuzz loop tying the three together — a seconds-long
    tier-1 smoke or a longer CI job (see the ``fuzz-smoke`` workflow).

See ``docs/verification.md`` for the generator knobs, the oracle matrix
semantics and the workflow for reproducing a CI fuzz failure.
"""

from .generate import (
    FLAVORS,
    GeneratedCase,
    GeneratorConfig,
    random_case,
    random_lane_inputs,
    random_mixed_circuit,
    random_oracle_circuit,
    random_reversible_circuit,
    seed_sequence,
)
from .oracle import (
    STRATEGIES,
    TRANSFORMS,
    Mismatch,
    OracleReport,
    check_case,
    check_circuit,
)
from .shrink import ShrinkResult, render_regression_test, shrink_circuit
from .fuzz import FuzzFailure, FuzzStats, run_fuzz

__all__ = [
    "FLAVORS",
    "GeneratedCase",
    "GeneratorConfig",
    "random_case",
    "random_lane_inputs",
    "random_mixed_circuit",
    "random_oracle_circuit",
    "random_reversible_circuit",
    "seed_sequence",
    "STRATEGIES",
    "TRANSFORMS",
    "Mismatch",
    "OracleReport",
    "check_case",
    "check_circuit",
    "ShrinkResult",
    "render_regression_test",
    "shrink_circuit",
    "FuzzFailure",
    "FuzzStats",
    "run_fuzz",
]
