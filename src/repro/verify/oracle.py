"""The equivalence oracle: one circuit, every backend, every transform.

:func:`check_circuit` runs a circuit through the eight *execution
strategies* of the backend ladder

======================  ====================================================
``classical``           one :class:`~repro.sim.classical.ClassicalSimulator`
                        run per lane (broadcast-input cross-check)
``interpretive``        :class:`~repro.sim.bitplane.BitplaneSimulator.run`
                        (the engine op-stream walk)
``scalar``              ``run_compiled(fused=False)`` — the flat compiled VM
``codegen``             ``run_compiled()`` — the fused generated kernel
``arrays``              ``run_compiled(kernels="arrays")`` — stacked numpy
``vector``              ``run_compiled(kernels="vector")`` — the generated
                        straight-line numpy kernel
``sharded``             :func:`~repro.sim.dispatch.run_sharded` — the batch
                        split across 2 lane shards on a thread pool and
                        merged (the parallel dispatch layer)
``auto``                the calibrated cost model resolves a concrete
                        strategy (:mod:`repro.sim.dispatch.cost`) and that
                        choice runs (the dispatch-decision layer)
======================  ====================================================

and through every registered :mod:`repro.transform` pass (``invert`` as the
``invert∘invert`` round trip, ``insert_mbu``, ``lower_toffoli``,
``decompose_clifford_t``, ``cancel_adjacent``), comparing final register
states, classical bits, executed-gate tallies, exact per-lane tallies and
measurement-outcome-stream consumption under scripted
(:class:`~repro.sim.outcomes.ForcedOutcomes`,
:class:`~repro.sim.outcomes.ConstantOutcomes`) and seeded random providers.

The result is an :class:`OracleReport` whose ``matrix`` records a status
for every (strategy, transform) cell:

``agree``
    the strategy executed the (transformed) circuit and every comparison
    held;
``reject``
    the circuit has no basis-state semantics (e.g. the bare Hadamards of
    ``decompose_clifford_t`` output) and the strategy rejected it with
    :class:`~repro.sim.classical.UnsupportedGateError` — *consistent
    rejection is itself a differential property*: the compiled strategies
    validate eagerly at compile time, so a lane-level walk silently
    mis-executing an unsupported gate would surface here;
``lazy``
    a statically-unsupported circuit completed under a lazy runtime walk
    (the interpretive/classical backends only reject gates they reach —
    e.g. an ``h`` inside a never-taken branch);
``inapplicable``
    the transform does not accept the circuit by contract (``invert`` on a
    measurement-bearing circuit, remark 2.23);
``mismatch``
    the cell's comparisons ran and at least one failed (every such cell has
    matching entries in ``OracleReport.failures``).

Scripted-provider alignment rules (why each comparison is sound):

* varied per-lane inputs are compared across the bit-plane strategies
  only — they consume one shared script entry per measurement *event*
  (the ``sharded`` strategy included: each shard draws the full-width
  event and slices its lane window, so consumption is identical);
* ``sharded`` joins the stateful-provider comparisons only on *flat*
  programs (:func:`~repro.sim.dispatch.program_is_flat`) — on circuits
  with nested measurement sites the shard pool refuses stateful streams
  by contract, so that cell is validated under the stateless
  ``ConstantOutcomes`` providers instead;
* the ``classical`` cross-check runs with every lane holding the *same*
  input, where per-lane and vectorized event streams provably coincide;
* reference comparisons across measurement-*inserting* rewrites
  (``lower_toffoli``, ``insert_mbu``) use
  :class:`~repro.sim.outcomes.ConstantOutcomes` — insertion-invariant by
  construction — because inserting events shifts a positional script.

When ``check_circuit`` is called with ``noise_rate > 0`` (the ``noisy``
fuzzer flavor sets this from the case metadata), the matrix grows a
``noisy`` column: every strategy re-runs the circuit under the *identical*
seeded bit-flip channel (:class:`~repro.noise.NoiseConfig`) and
faulty-outcome stream (:class:`~repro.noise.NoisyOutcomes`) and must agree
bit-exactly, and a rate-0 wrapped run must be bit-identical to the bare
run — the determinism contract of :mod:`repro.noise`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.counts import GateCounts
from ..circuits.ops import MBUBlock, Measurement, iter_flat
from ..sim import (
    BitplaneSimulator,
    ClassicalSimulator,
    ConstantOutcomes,
    ForcedOutcomes,
    RandomOutcomes,
    StatevectorSimulator,
    UnsupportedGateError,
)
from ..sim.outcomes import OutcomeProvider
from ..sim.strategies import FUSED_KERNELS
from ..transform import apply_transforms, compile_program, fuse_program
from .generate import GeneratedCase

__all__ = [
    "STRATEGIES",
    "TRANSFORMS",
    "BITPLANE_STRATEGIES",
    "NOISY",
    "Mismatch",
    "OracleReport",
    "check_circuit",
    "check_case",
]

#: The eight execution strategies of the backend ladder (the fused kernel
#: names come from :data:`repro.sim.strategies.FUSED_KERNELS`).
STRATEGIES = (
    "classical",
    "interpretive",
    "scalar",
) + FUSED_KERNELS + (
    "sharded",
    "auto",
)

#: The registered transform passes the oracle exercises.
TRANSFORMS = (
    "invert",
    "insert_mbu",
    "lower_toffoli",
    "decompose_clifford_t",
    "cancel_adjacent",
)

#: Strategies that run on the vectorized bit-plane state.
BITPLANE_STRATEGIES = (
    "interpretive",
    "scalar",
) + FUSED_KERNELS + (
    "sharded",
    "auto",
)

#: Strategies that validate eagerly at compile time (must *reject* circuits
#: outside basis-state semantics, consistently with compile_program).
COMPILED_STRATEGIES = ("scalar",) + FUSED_KERNELS + ("sharded", "auto")

#: Matrix column for the untransformed differential run.
BASE = "none"

#: Matrix column for the noise-injection differential run (active when
#: ``check_circuit`` is called with ``noise_rate > 0``): the circuit is
#: salted with bit-flip channel points, run under a seeded channel config
#: *and* a seeded :class:`repro.noise.NoisyOutcomes` wrapper, and every
#: bit-plane strategy must agree bit-exactly; rate 0 must be bit-identical
#: to the noiseless run; the classical cell is a seeded determinism replay
#: (its scalar channel stream intentionally differs from the per-lane one).
NOISY = "noisy"

#: Default exact per-lane counters (tracked where the strategy supports it).
DEFAULT_LANE_COUNTS = ("x", "cx", "ccx")


@dataclass(frozen=True)
class Mismatch:
    """One verified disagreement (or unexpected error) the oracle found."""

    kind: str  # registers | bits | tally | lane_tally | consumed | support | structure | statevector | error
    transform: str  # a TRANSFORMS name or BASE
    strategy: Optional[str]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display only
        where = f"{self.transform}/{self.strategy or '*'}"
        return f"[{self.kind}] {where}: {self.detail}"


@dataclass
class OracleReport:
    """Everything one :func:`check_circuit` call established."""

    failures: List[Mismatch] = field(default_factory=list)
    #: (strategy, transform-or-``none``) -> agree | reject | lazy | inapplicable
    matrix: Dict[Tuple[str, str], str] = field(default_factory=dict)
    checks: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return f"ok ({self.checks} comparisons, {len(self.matrix)} matrix cells)"
        lines = [f"{len(self.failures)} mismatch(es) in {self.checks} comparisons:"]
        lines += [f"  {m}" for m in self.failures[:12]]
        if len(self.failures) > 12:
            lines.append(f"  ... and {len(self.failures) - 12} more")
        return "\n".join(lines)

    def failure_signature(self) -> frozenset:
        """The (kind, transform) pairs that failed — the shrinker's notion
        of 'the same bug'."""
        return frozenset((m.kind, m.transform) for m in self.failures)


# --------------------------------------------------------------------------- #
# one strategy, one run


@dataclass
class _RunResult:
    """Observable outcome of one strategy executing one circuit."""

    strategy: str
    error: Optional[str] = None
    registers: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    bits: Tuple[Tuple[int, ...], ...] = ()
    tally: Optional[GateCounts] = None
    consumed: Optional[int] = None
    lane_tally: Optional[Tuple[int, ...]] = None


def _event_bound(circuit: Circuit) -> int:
    """Static upper bound on measurement events (script sizing)."""
    return sum(
        1 for op in iter_flat(circuit.ops) if isinstance(op, (Measurement, MBUBlock))
    )


def _make_script(circuit: Circuit, rng: random.Random) -> List[int]:
    return [rng.randint(0, 1) for _ in range(_event_bound(circuit) + 4)]


def _resolve_auto(circuit: Circuit, batch: int, lane_counts, program, noise=None):
    """The concrete strategy the cost model picks for this request.

    Mirrors what ``simulate(backend="auto")`` would do for a compiled
    bit-plane run, restricted to strategies whose oracle comparisons are
    sound here: ``sharded`` is a candidate only on flat programs (stateful
    scripted providers cannot shard otherwise — and with noise enabled the
    channel points must be flat too), and ``scalar`` only when no
    per-lane counters are tracked (the flat VM has none).
    """
    from ..sim.dispatch import noise_is_flat, program_is_flat
    from ..sim.dispatch.cost import default_model

    if program is None:
        program = compile_program(circuit, tally=True)  # may raise
    scalar = getattr(program, "scalar", program)
    candidates = ["scalar", "codegen", "arrays", "vector"]
    if program_is_flat(program) and (
        noise is None or float(noise.rate) == 0.0 or noise_is_flat(program)
    ):
        candidates.append("sharded")
    choice = default_model().choose(
        ops=len(scalar.instructions),
        batch=batch,
        tally=True,
        lane_counts=bool(lane_counts),
        candidates=candidates,
    )
    return choice, program


def _run_bitplane(
    strategy: str,
    circuit: Circuit,
    inputs: Mapping[str, Sequence[int]],
    provider: OutcomeProvider,
    batch: int,
    lane_counts: Sequence[str],
    program=None,
    noise=None,
) -> _RunResult:
    if strategy == "auto":
        try:
            choice, program = _resolve_auto(
                circuit, batch, lane_counts, program, noise=noise
            )
        except UnsupportedGateError as exc:
            return _RunResult(strategy, error=str(exc))
        prog = getattr(program, "scalar", program) if choice == "scalar" else program
        result = _run_bitplane(
            choice, circuit, inputs, provider, batch, lane_counts, program=prog,
            noise=noise,
        )
        result.strategy = strategy
        return result
    if strategy == "sharded":
        from ..sim.dispatch import run_sharded

        track = tuple(lane_counts) or None
        try:
            sharded = run_sharded(
                program if program is not None else circuit,
                {name: list(values) for name, values in inputs.items()},
                batch=batch,
                shards=min(2, batch),
                executor="thread",
                outcomes=provider,
                tally=True,
                lane_counts=track,
                noise=noise,
            )
        except UnsupportedGateError as exc:
            return _RunResult(strategy, error=str(exc))
        return _RunResult(
            strategy,
            registers={
                name: tuple(sharded.get_register(name))
                for name in circuit.registers
            },
            bits=tuple(
                tuple(sharded.get_bit(b)) for b in range(circuit.num_bits)
            ),
            tally=sharded.tally,
            consumed=sharded.consumed,
            lane_tally=tuple(sharded.lane_tally().tolist()) if track else None,
        )
    track = lane_counts if strategy != "scalar" else None
    sim = BitplaneSimulator(
        circuit, batch=batch, outcomes=provider, tally=True, lane_counts=track,
        noise=noise,
    )
    for name, values in inputs.items():
        sim.set_register(name, list(values))
    try:
        if strategy == "interpretive":
            sim.run()
        elif strategy == "scalar":
            sim.run_compiled(program, fused=False)
        elif strategy == "codegen":
            sim.run_compiled(program)
        elif strategy == "arrays":
            sim.run_compiled(program, kernels="arrays")
        elif strategy == "vector":
            sim.run_compiled(program, kernels="vector")
        else:  # pragma: no cover - guarded by STRATEGIES
            raise ValueError(f"unknown strategy {strategy!r}")
    except UnsupportedGateError as exc:
        return _RunResult(strategy, error=str(exc))
    return _RunResult(
        strategy,
        registers={name: tuple(sim.get_register(name)) for name in circuit.registers},
        bits=tuple(tuple(sim.get_bit(b)) for b in range(circuit.num_bits)),
        tally=sim.tally,
        consumed=getattr(provider, "consumed", None),
        lane_tally=tuple(sim.lane_tally().tolist()) if track else None,
    )


def _run_classical(
    circuit: Circuit,
    inputs: Mapping[str, Sequence[int]],
    provider: OutcomeProvider,
    noise=None,
) -> _RunResult:
    sim = ClassicalSimulator(circuit, outcomes=provider, tally=True, noise=noise)
    for name, values in inputs.items():
        sim.set_register(circuit.registers[name], values[0])
    try:
        sim.run()
    except UnsupportedGateError as exc:
        return _RunResult("classical", error=str(exc))
    return _RunResult(
        "classical",
        registers={
            name: (sim.get_register(reg),) for name, reg in circuit.registers.items()
        },
        bits=tuple((b,) for b in sim.bits),
        tally=sim.tally,
        consumed=getattr(provider, "consumed", None),
    )


# --------------------------------------------------------------------------- #
# the checker


class _Checker:
    def __init__(
        self,
        circuit: Circuit,
        inputs: Dict[str, List[int]],
        *,
        seed: int,
        batch: int,
        transforms: Sequence[str],
        data_registers: Tuple[str, ...],
        unitary: bool,
        statevector_limit: int,
        lane_counts: Sequence[str],
        noise_rate: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        self.circuit = circuit
        self.inputs = inputs
        self.seed = seed
        self.batch = batch
        self.transforms = tuple(transforms)
        self.data_registers = data_registers
        self.unitary = unitary
        self.statevector_limit = statevector_limit
        self.lane_counts = tuple(lane_counts)
        self.noise_rate = float(noise_rate)
        self.noise_seed = int(noise_seed)
        self.report = OracleReport()
        # Memo of the untransformed circuit's interpretive runs under
        # ConstantOutcomes(v) — transform-independent, shared by every
        # measurement-inserting rewrite's reference comparison.
        self._const_base: Dict[int, _RunResult] = {}

    # -- small helpers -----------------------------------------------------

    def _fail(self, kind: str, transform: str, strategy: Optional[str], detail: str):
        self.report.failures.append(Mismatch(kind, transform, strategy, detail))

    def _cell(self, strategy: str, transform: str, status: str) -> None:
        self.report.matrix[(strategy, transform)] = status

    def _check(self, condition: bool, kind, transform, strategy, detail) -> bool:
        self.report.checks += 1
        if not condition:
            self._fail(kind, transform, strategy, detail)
        return condition

    def _rng(self, label: str) -> random.Random:
        return random.Random(f"repro.verify:{self.seed}:{label}")

    def _broadcast_inputs(self) -> Dict[str, List[int]]:
        return {name: [vals[0]] * self.batch for name, vals in self.inputs.items()}

    # -- the differential core --------------------------------------------

    def _compare_runs(self, ref: _RunResult, got: _RunResult, transform: str) -> None:
        s = got.strategy
        self._check(got.registers == ref.registers, "registers", transform, s,
                    f"register lanes diverge from {ref.strategy}")
        self._check(got.bits == ref.bits, "bits", transform, s,
                    f"classical bit lanes diverge from {ref.strategy}")
        self._check(got.tally == ref.tally, "tally", transform, s,
                    f"executed-gate tally diverges from {ref.strategy}")
        if got.consumed is not None and ref.consumed is not None:
            self._check(got.consumed == ref.consumed, "consumed", transform, s,
                        f"consumed {got.consumed} outcome entries, "
                        f"{ref.strategy} consumed {ref.consumed}")
        if got.lane_tally is not None and ref.lane_tally is not None:
            self._check(got.lane_tally == ref.lane_tally, "lane_tally", transform, s,
                        f"per-lane tallies diverge from {ref.strategy}")

    def _differential(
        self, circuit: Circuit, inputs: Dict[str, List[int]], transform: str
    ) -> Optional[_RunResult]:
        """Cross-strategy agreement on one circuit; returns the interpretive
        reference result, or ``None`` when the circuit has no basis-state
        semantics (consistent-rejection path)."""
        try:
            program = compile_program(circuit, tally=True)
        except UnsupportedGateError:
            self._reject_path(circuit, inputs, transform)
            return None
        fused = fuse_program(program, memoize=False)
        from ..sim.dispatch import program_is_flat

        # Stateful scripted providers shard only on flat programs (the pool
        # refuses otherwise); the sharded cell of a non-flat circuit is
        # validated under ConstantOutcomes below instead.  ``auto`` is
        # always safe: its candidate set drops ``sharded`` when non-flat.
        flat = program_is_flat(program)
        stateful = tuple(
            s for s in BITPLANE_STRATEGIES if flat or s != "sharded"
        )
        script = _make_script(circuit, self._rng(f"script:{transform}"))

        def forced() -> ForcedOutcomes:
            return ForcedOutcomes(script)

        # (a) varied lanes, shared script, all bit-plane strategies
        runs: Dict[str, _RunResult] = {}
        for strategy in stateful:
            prog = program if strategy == "scalar" else fused
            runs[strategy] = _run_bitplane(
                strategy, circuit, inputs, forced(), self.batch,
                self.lane_counts, program=prog,
            )
        ref = runs["interpretive"]
        supported = [s for s, r in runs.items() if r.error is None]
        if len(supported) not in (0, len(runs)):
            broken = {s: r.error for s, r in runs.items() if r.error is not None}
            self._fail("support", transform, None,
                       f"strategies disagree on supportedness: {broken}")
            return None
        if not supported:  # compile succeeded but execution rejected everywhere
            for strategy in BITPLANE_STRATEGIES:
                self._cell(strategy, transform, "reject")
            return None
        for strategy in stateful:
            if strategy != "interpretive":
                self._compare_runs(ref, runs[strategy], transform)
            self._cell(strategy, transform, "agree")

        # (b) varied lanes, independent per-lane random outcomes
        rand_runs = {
            strategy: _run_bitplane(
                strategy, circuit, inputs, RandomOutcomes(self.seed), self.batch,
                self.lane_counts, program=program if strategy == "scalar" else fused,
            )
            for strategy in stateful
        }
        rand_ref = rand_runs["interpretive"]
        for strategy in stateful:
            if strategy != "interpretive":
                self._compare_runs(rand_ref, rand_runs[strategy], transform)
        if not flat:
            self._sharded_constant_cells(circuit, inputs, transform, fused)

        # (c) broadcast input: per-lane classical replay is sound here
        broadcast = {name: [vals[0]] * self.batch for name, vals in inputs.items()}
        b_ref = _run_bitplane(
            "interpretive", circuit, broadcast, forced(), self.batch,
            self.lane_counts, program=None,
        )
        classical = _run_classical(circuit, broadcast, forced())
        if classical.error is not None:
            self._fail("support", transform, "classical",
                       f"classical rejected a compiled-supported circuit: "
                       f"{classical.error}")
        else:
            lane0 = _RunResult(
                "interpretive(lane0)",
                registers={n: (v[0],) for n, v in b_ref.registers.items()},
                bits=tuple((lanes[0],) for lanes in b_ref.bits),
                tally=b_ref.tally,
                consumed=b_ref.consumed,
            )
            self._compare_runs(lane0, classical, transform)
            self._cell("classical", transform, "agree")

        # (d) statevector ground truth on small circuits.  MBU blocks are
        # excluded: the statevector backend runs correction bodies
        # *literally*, while generated mixed-flavor bodies are arbitrary
        # garbage flips the basis-state backends treat axiomatically
        # (Lemma 4.1's |0> guarantee) — only builder-emitted bodies are
        # algebraically valid corrections.
        if circuit.num_qubits <= self.statevector_limit and not any(
            isinstance(op, MBUBlock) for op in iter_flat(circuit.ops)
        ):
            self._statevector_check(circuit, broadcast, transform)
        return ref

    def _sharded_constant_cells(
        self, circuit: Circuit, inputs: Dict[str, List[int]], transform: str,
        fused,
    ) -> None:
        """Non-flat circuit: the shard pool refuses stateful outcome
        streams by contract, so the sharded cell is validated against the
        interpretive walk under both stateless ConstantOutcomes streams."""
        status = "agree"
        for value in (0, 1):
            ref = _run_bitplane(
                "interpretive", circuit, inputs, ConstantOutcomes(value),
                self.batch, self.lane_counts,
            )
            got = _run_bitplane(
                "sharded", circuit, inputs, ConstantOutcomes(value),
                self.batch, self.lane_counts, program=fused,
            )
            if ref.error is not None or got.error is not None:
                self._check(
                    (ref.error is None) == (got.error is None), "support",
                    transform, "sharded",
                    "sharded and interpretive disagree on supportedness",
                )
                status = "reject"
                continue
            self._compare_runs(ref, got, transform)
        self._cell("sharded", transform, status)

    def _reject_path(
        self, circuit: Circuit, inputs: Dict[str, List[int]], transform: str
    ) -> None:
        """Statically unsupported circuit: compiled strategies must reject;
        lazy walks may either reject or complete."""
        for strategy in COMPILED_STRATEGIES:
            result = _run_bitplane(
                strategy, circuit, inputs, ConstantOutcomes(0), self.batch,
                self.lane_counts,
            )
            self._check(result.error is not None, "support", transform, strategy,
                        "compiled strategy executed a circuit compile_program "
                        "rejects")
            self._cell(strategy, transform, "reject")
        lazy = _run_bitplane(
            "interpretive", circuit, inputs, ConstantOutcomes(0), self.batch,
            self.lane_counts,
        )
        self._cell("interpretive", transform,
                   "reject" if lazy.error is not None else "lazy")
        classical = _run_classical(circuit, self._broadcast_inputs(),
                                   ConstantOutcomes(0))
        self._cell("classical", transform,
                   "reject" if classical.error is not None else "lazy")

    def _statevector_check(
        self,
        circuit: Circuit,
        broadcast: Dict[str, List[int]],
        transform: str,
    ) -> None:
        """Dense ground truth vs the classical backend on one basis input.

        Both backends run under :class:`ConstantOutcomes` rather than a
        positional script: the statevector backend draws one outcome per
        measurement *including deterministic Z measurements* (where only
        one outcome is possible), so script positions do not line up with
        the basis-state backends — ConstantOutcomes is alignment-free.
        """
        for value in (0, 1):
            classical = _run_classical(circuit, broadcast, ConstantOutcomes(value))
            if classical.error is not None:
                return
            sv = StatevectorSimulator(circuit, outcomes=ConstantOutcomes(value))
            sv.set_basis_state({name: vals[0] for name, vals in broadcast.items()})
            sv.run()
            self._check(tuple((b,) for b in sv.bits) == classical.bits,
                        "statevector", transform, "classical",
                        "statevector classical bits diverge from classical backend")
            try:
                values = sv.register_values()
            except ValueError:
                values = {}
            if len(values) == 1:
                (key, _amp), = values.items()
                got = dict(zip(circuit.registers, key))
                want = {n: v[0] for n, v in classical.registers.items()}
                self._check(got == want, "statevector", transform, "classical",
                            f"statevector collapsed to {got}, classical got {want}")

    # -- the noise-injection column ----------------------------------------

    def _check_noisy(self) -> None:
        """The ``noisy`` matrix column (see :data:`NOISY`).

        Gated to *seeded* providers by construction: every stream below is
        a :class:`ForcedOutcomes` script, a seeded :class:`RandomOutcomes`,
        or a :class:`~repro.noise.NoisyOutcomes` wrapper around one — the
        comparisons are exact replays, never tolerance checks.
        """
        transform = NOISY
        from ..noise import NoiseConfig, NoisyOutcomes, insert_noise_points, noise_points

        circuit = self.circuit
        if not noise_points(circuit):
            circuit = insert_noise_points(circuit)
        rate = self.noise_rate
        noise = NoiseConfig(rate=rate, seed=self.noise_seed)
        flip_seed = self.noise_seed + 1
        try:
            program = compile_program(circuit, tally=True)
        except UnsupportedGateError:
            for strategy in STRATEGIES:
                self._cell(strategy, transform, "inapplicable")
            return
        fused = fuse_program(program, memoize=False)
        from ..sim.dispatch import program_is_flat

        flat = program_is_flat(program)
        stateful = tuple(s for s in BITPLANE_STRATEGIES if flat or s != "sharded")
        script = _make_script(circuit, self._rng("noisy-script"))

        # (a) rate 0 is bit-identical to no noise at all — channel config
        # and NoisyOutcomes wrapper both consume zero extra entropy.
        clean = _run_bitplane(
            "interpretive", circuit, self.inputs, ForcedOutcomes(script),
            self.batch, self.lane_counts,
        )
        zero = _run_bitplane(
            "interpretive", circuit, self.inputs,
            NoisyOutcomes(ForcedOutcomes(script), 0.0, seed=flip_seed),
            self.batch, self.lane_counts,
            noise=NoiseConfig(rate=0.0, seed=self.noise_seed),
        )
        if clean.error is None and zero.error is None:
            zero.strategy = "interpretive"
            self._check(
                (zero.registers, zero.bits, zero.consumed)
                == (clean.registers, clean.bits, clean.consumed),
                "registers", transform, "interpretive",
                "rate-0 noise is not bit-identical to no noise",
            )

        # (b) seeded noisy script: every bit-plane strategy agrees exactly
        def provider() -> NoisyOutcomes:
            return NoisyOutcomes(ForcedOutcomes(script), rate, seed=flip_seed)

        runs: Dict[str, _RunResult] = {}
        for strategy in stateful:
            prog = program if strategy == "scalar" else fused
            runs[strategy] = _run_bitplane(
                strategy, circuit, self.inputs, provider(), self.batch,
                self.lane_counts, program=prog, noise=noise,
            )
        ref = runs["interpretive"]
        supported = [s for s, r in runs.items() if r.error is None]
        if len(supported) not in (0, len(runs)):
            broken = {s: r.error for s, r in runs.items() if r.error is not None}
            self._fail("support", transform, None,
                       f"noisy strategies disagree on supportedness: {broken}")
            return
        if not supported:
            for strategy in STRATEGIES:
                self._cell(strategy, transform, "reject")
            return
        for strategy in stateful:
            if strategy != "interpretive":
                self._compare_runs(ref, runs[strategy], transform)
            self._cell(strategy, transform, "agree")

        # (c) seeded random outcomes under the same channel
        rand_runs = {
            strategy: _run_bitplane(
                strategy, circuit, self.inputs,
                NoisyOutcomes(RandomOutcomes(self.seed), rate, seed=flip_seed),
                self.batch, self.lane_counts,
                program=program if strategy == "scalar" else fused,
                noise=noise,
            )
            for strategy in stateful
        }
        rand_ref = rand_runs["interpretive"]
        for strategy in stateful:
            if strategy != "interpretive":
                self._compare_runs(rand_ref, rand_runs[strategy], transform)

        # Non-flat program: the pool refuses the stateful NoisyOutcomes
        # wrapper, so the sharded cell validates the channel alone under
        # stateless outcome streams (the channel itself is always flat:
        # insert_noise_points only salts top level).
        if not flat:
            status = "agree"
            for value in (0, 1):
                c_ref = _run_bitplane(
                    "interpretive", circuit, self.inputs,
                    ConstantOutcomes(value), self.batch, self.lane_counts,
                    noise=noise,
                )
                got = _run_bitplane(
                    "sharded", circuit, self.inputs, ConstantOutcomes(value),
                    self.batch, self.lane_counts, program=fused, noise=noise,
                )
                if c_ref.error is not None or got.error is not None:
                    self._check(
                        (c_ref.error is None) == (got.error is None), "support",
                        transform, "sharded",
                        "sharded and interpretive disagree on noisy "
                        "supportedness",
                    )
                    status = "reject"
                    continue
                self._compare_runs(c_ref, got, transform)
            self._cell("sharded", transform, status)

        # (d) classical: the scalar channel stream intentionally differs
        # from the per-lane one, so the cell is a seeded determinism replay.
        broadcast = self._broadcast_inputs()

        def classical_run() -> _RunResult:
            return _run_classical(
                circuit, broadcast,
                NoisyOutcomes(RandomOutcomes(self.seed), rate, seed=flip_seed),
                noise=noise,
            )

        first, second = classical_run(), classical_run()
        if (first.error is None) != (second.error is None):
            self._fail("support", transform, "classical",
                       "noisy classical replay disagrees on supportedness")
        elif first.error is not None:
            self._cell("classical", transform, "reject")
        else:
            self._compare_runs(first, second, transform)
            self._cell("classical", transform, "agree")

    # -- transform checks --------------------------------------------------

    def _constant_reference(
        self, transformed: Circuit, transform: str, extra_clean: Sequence[str]
    ) -> None:
        """Data registers must match the untransformed circuit under both
        insertion-invariant ConstantOutcomes streams; pass-allocated
        ancillas must come back clean."""
        for value in (0, 1):
            base = self._const_base.get(value)
            if base is None:
                base = self._const_base[value] = _run_bitplane(
                    "interpretive", self.circuit, self.inputs,
                    ConstantOutcomes(value), self.batch, (),
                )
            got = _run_bitplane(
                "interpretive", transformed, self.inputs,
                ConstantOutcomes(value), self.batch, (),
            )
            if base.error is not None or got.error is not None:
                continue  # support consistency is handled by _differential
            for name in self.data_registers:
                self._check(
                    got.registers.get(name) == base.registers.get(name),
                    "registers", transform, "interpretive",
                    f"data register {name!r} diverges from the untransformed "
                    f"circuit under ConstantOutcomes({value})",
                )
            for name in extra_clean:
                lanes = got.registers.get(name, ())
                self._check(
                    all(v == 0 for v in lanes), "registers", transform,
                    "interpretive",
                    f"pass-allocated register {name!r} not returned to |0>",
                )

    def _script_reference(self, transformed: Circuit, transform: str) -> None:
        """Event-structure-preserving rewrite: everything must match the
        untransformed circuit under one shared forced script."""
        script = _make_script(self.circuit, self._rng("ref-script"))
        base = _run_bitplane(
            "interpretive", self.circuit, self.inputs,
            ForcedOutcomes(script), self.batch, self.lane_counts,
        )
        got = _run_bitplane(
            "interpretive", transformed, self.inputs,
            ForcedOutcomes(script), self.batch, self.lane_counts,
        )
        if base.error is not None or got.error is not None:
            return
        self._check(got.registers == base.registers, "registers", transform,
                    "interpretive", "registers diverge from untransformed circuit")
        self._check(got.bits == base.bits, "bits", transform, "interpretive",
                    "bits diverge from untransformed circuit")
        self._check(got.consumed == base.consumed, "consumed", transform,
                    "interpretive", "outcome consumption changed")

    def _check_invert(self) -> None:
        transform = "invert"
        if not self.unitary:
            for strategy in STRATEGIES:
                self._cell(strategy, transform, "inapplicable")
            return
        inv = apply_transforms(self.circuit, ["invert"])
        double = apply_transforms(inv, ["invert"])
        self._check(double.structurally_equal(self.circuit), "structure",
                    transform, None, "invert∘invert is not the identity rewrite")
        # Round trip: feed the forward outputs through the inverse; every
        # strategy must recover the original inputs.
        forward = _run_bitplane(
            "interpretive", self.circuit, self.inputs, ConstantOutcomes(0),
            self.batch, (),
        )
        if forward.error is not None:
            return
        inv_inputs = {name: list(vals) for name, vals in forward.registers.items()}
        expected = {
            name: tuple(self.inputs.get(name, [0] * self.batch))
            for name in self.circuit.registers
        }
        for strategy in BITPLANE_STRATEGIES:
            back = _run_bitplane(
                strategy, inv, inv_inputs, ConstantOutcomes(0), self.batch,
                self.lane_counts,
            )
            ok = back.error is None and back.registers == expected
            self._check(ok, "registers", transform, strategy,
                        "invert round trip did not restore the inputs")
            self._cell(strategy, transform, "agree" if ok else "reject")
        classical = _run_classical(
            inv, {n: [v[0]] * self.batch for n, v in inv_inputs.items()},
            ConstantOutcomes(0),
        )
        ok = classical.error is None and all(
            classical.registers[name][0] == expected[name][0] for name in expected
        )
        self._check(ok, "registers", transform, "classical",
                    "classical invert round trip did not restore the inputs")
        self._cell("classical", transform, "agree" if ok else "reject")

    def _check_decompose(self) -> None:
        transform = "decompose_clifford_t"
        transformed = apply_transforms(self.circuit, [transform])
        ref = self._differential(transformed, self.inputs, transform)
        if ref is not None:
            # no Toffoli-class gates: the pass was a structural no-op
            self._script_reference(transformed, transform)
        if self.unitary and self.circuit.num_qubits <= self.statevector_limit:
            value = {name: vals[0] for name, vals in self.inputs.items()}
            sv0 = StatevectorSimulator(self.circuit)
            sv0.set_basis_state(value)
            sv0.run()
            sv1 = StatevectorSimulator(transformed)
            sv1.set_basis_state(value)
            sv1.run()
            ref_values = sv0.register_values()
            got_values = sv1.register_values()
            same_keys = set(ref_values) == set(got_values)
            self._check(same_keys, "statevector", transform, None,
                        "Clifford+T decomposition changed the final state")
            if same_keys:
                self.report.checks += 1
                for key, amp in ref_values.items():
                    if abs(abs(got_values[key]) - abs(amp)) > 1e-9:
                        self._fail("statevector", transform, None,
                                   "Clifford+T decomposition changed amplitudes")
                        break

    def _check_rewrite(self, transform: str) -> None:
        """cancel_adjacent / lower_toffoli / insert_mbu: apply, re-run the
        full differential matrix on the output, compare data registers
        against the untransformed reference."""
        transformed = apply_transforms(self.circuit, [transform])
        self._differential(transformed, self.inputs, transform)
        extra_clean = tuple(
            name for name in transformed.registers
            if name not in self.circuit.registers
        )
        if transform == "cancel_adjacent":
            self._script_reference(transformed, transform)
        else:
            self._constant_reference(transformed, transform, extra_clean)
        if transform == "insert_mbu" and not _has_markers(self.circuit):
            self._check(transformed.structurally_equal(self.circuit), "structure",
                        transform, None,
                        "insert_mbu rewrote a circuit with no uncompute markers")

    # -- entry point -------------------------------------------------------

    def run(self) -> OracleReport:
        ref = self._differential(self.circuit, self.inputs, BASE)
        if self.noise_rate > 0.0:
            self._check_noisy()
        for transform in self.transforms:
            if transform == "invert":
                self._check_invert()
            elif transform == "decompose_clifford_t":
                self._check_decompose()
            elif transform in ("cancel_adjacent", "lower_toffoli", "insert_mbu"):
                if ref is None:
                    for strategy in STRATEGIES:
                        self._cell(strategy, transform, "inapplicable")
                    continue
                self._check_rewrite(transform)
            else:
                raise ValueError(
                    f"oracle has no recipe for transform {transform!r}; "
                    f"known: {TRANSFORMS}"
                )
        # Downgrade any matrix cell whose comparisons recorded a failure:
        # the grid must never claim agreement for a cell that disagreed.
        for mismatch in self.report.failures:
            key = (mismatch.strategy, mismatch.transform)
            if mismatch.strategy is not None and key in self.report.matrix:
                self.report.matrix[key] = "mismatch"
        return self.report


def _has_markers(circuit: Circuit) -> bool:
    from ..circuits.markers import parse_uncompute_label
    from ..circuits.ops import Annotation

    return any(
        isinstance(op, Annotation) and parse_uncompute_label(op.label) is not None
        for op in iter_flat(circuit.ops)
    )


def _is_unitary(circuit: Circuit) -> bool:
    return not any(
        isinstance(op, (Measurement, MBUBlock)) for op in iter_flat(circuit.ops)
    )


# --------------------------------------------------------------------------- #
# public entry points


def check_circuit(
    circuit: Circuit,
    inputs: Mapping[str, Any] | None = None,
    *,
    seed: int = 0,
    batch: int | None = None,
    transforms: Sequence[str] = TRANSFORMS,
    data_registers: Sequence[str] | None = None,
    unitary: bool | None = None,
    statevector_limit: int = 10,
    lane_counts: Sequence[str] = DEFAULT_LANE_COUNTS,
    noise_rate: float = 0.0,
    noise_seed: int = 0,
) -> OracleReport:
    """Run the full oracle matrix on one circuit.

    ``inputs`` maps register names to an int (broadcast) or a per-lane
    sequence; ``batch`` defaults to the longest per-lane list (or 8).
    ``data_registers`` are the registers compared against the
    untransformed reference under semantics-preserving rewrites (default:
    all registers).  ``unitary`` (auto-detected by default) gates the
    ``invert`` recipe.  ``noise_rate > 0`` adds the :data:`NOISY` matrix
    column: the circuit (salted with noise points if it has none) reruns
    under the seeded bit-flip channel plus a seeded
    :class:`~repro.noise.NoisyOutcomes` stream, and every strategy must
    agree bit-exactly; ``noise_seed`` pins both streams.  See the module
    docstring for the matrix semantics.
    """
    inputs = dict(inputs or {})
    if batch is None:
        lengths = [len(v) for v in inputs.values() if not isinstance(v, int)]
        batch = max(lengths) if lengths else 8
    lane_inputs: Dict[str, List[int]] = {}
    for name, value in inputs.items():
        if isinstance(value, int):
            lane_inputs[name] = [value] * batch
        else:
            values = [int(v) for v in value]
            if len(values) != batch:
                raise ValueError(
                    f"register {name!r}: expected {batch} per-lane values, "
                    f"got {len(values)}"
                )
            lane_inputs[name] = values
    checker = _Checker(
        circuit,
        lane_inputs,
        seed=seed,
        batch=batch,
        transforms=transforms,
        data_registers=(
            tuple(data_registers) if data_registers is not None
            else tuple(circuit.registers)
        ),
        unitary=_is_unitary(circuit) if unitary is None else unitary,
        statevector_limit=statevector_limit,
        lane_counts=lane_counts,
        noise_rate=noise_rate,
        noise_seed=noise_seed,
    )
    return checker.run()


def check_case(case: GeneratedCase, **overrides: Any) -> OracleReport:
    """Run the oracle on a :class:`~repro.verify.generate.GeneratedCase`.

    Cases carrying ``noise_rate``/``noise_seed`` metadata (the ``noisy``
    fuzzer flavor) activate the :data:`NOISY` matrix column automatically.
    """
    kwargs: Dict[str, Any] = dict(
        seed=case.seed,
        batch=case.batch,
        data_registers=case.data_registers or None,
        unitary=case.unitary,
    )
    if "noise_rate" in case.meta:
        kwargs["noise_rate"] = case.meta["noise_rate"]
        kwargs["noise_seed"] = case.meta.get("noise_seed", 0)
    kwargs.update(overrides)
    return check_circuit(case.circuit, case.inputs, **kwargs)
