"""repro — reproduction of "Measurement-based uncomputation of quantum
circuits for modular arithmetic" (Luongo, Miti, Narasimhachar, Sireesh;
DAC 2025, arXiv:2407.20167).

The package provides:

* ``repro.circuits`` — a small quantum-circuit IR with measurement,
  classical feedback, MBU blocks, resource accounting and ASCII rendering;
* ``repro.sim`` — statevector and classical basis-state simulators;
* ``repro.boolarith`` — the appendix-A bit-string reference model;
* ``repro.arithmetic`` — all section-2 adders/subtractors/comparators
  (VBE, CDKPM, Gidney, Draper) with controlled / by-constant variants;
* ``repro.modular`` — all section-3 modular adders (VBE architecture,
  Takahashi, Beauregard) and their controlled / by-constant variants;
* ``repro.mbu`` — Lemma 4.1 and every section-4 MBU-optimised circuit;
* ``repro.transform`` — compiler passes over the IR (Lemma 4.1 as the
  ``insert_mbu`` rewrite, Toffoli lowering, Clifford+T decomposition,
  peephole cancellation, inversion) plus linear-program compilation for
  the bit-plane backend;
* ``repro.resources`` — the paper's cost formulas and Table 1-6 regeneration;
* ``repro.extensions`` — modular multiplication / exponentiation built on
  top of the (MBU) modular adders (the paper's future-work direction);
* ``repro.pipeline`` — cached, parallel reproduction sweeps with
  Monte-Carlo expected-cost checks and versioned JSON/markdown artifacts;
* ``repro.verify`` — differential verification: seeded random circuit
  generation, an equivalence oracle over every execution strategy and
  transform pass, and a shrinking fuzzer (``python -m repro.verify``);
* ``repro.noise`` — seeded noise injection: faulty measurement outcomes
  (``NoisyOutcomes``) and per-lane bit-flip channels at annotated noise
  points, deterministic across every backend and shard count.
"""

__version__ = "1.6.0"

from . import (
    arithmetic,
    boolarith,
    circuits,
    extensions,
    mbu,
    modular,
    noise,
    pipeline,
    resources,
    sim,
    transform,
    verify,
)

__all__ = [
    "arithmetic",
    "boolarith",
    "circuits",
    "extensions",
    "mbu",
    "modular",
    "noise",
    "pipeline",
    "resources",
    "sim",
    "transform",
    "verify",
    "__version__",
]
