"""Noise injection for the simulators: faulty outcomes and bit-flip channels.

The paper's Tables 1-6 assume perfect measurements; this package supplies
the two noise mechanisms needed to ask "does the protocol still work when
they are not", at Monte-Carlo scale:

:class:`NoisyOutcomes`
    Wraps any :class:`~repro.sim.outcomes.OutcomeProvider` and flips each
    sampled measurement outcome independently with probability ``rate``,
    drawn from a *separate* seeded flip stream.  Because X-basis
    measurements and MBU headers are the only operations that consume the
    outcome provider, this models a faulty measurement *record*: the
    classical bit (and the post-measurement state the simulators assign)
    disagrees with what an ideal apparatus would have reported.  It
    composes with ``Forced``/``Constant``/``Random`` providers and with
    :class:`~repro.sim.dispatch.SlicedOutcomes` sharding (it exposes
    ``clone()``), so noisy runs work on every execution rung.

:class:`NoiseConfig` + :func:`insert_noise_points`
    Per-lane bit-flip channels in the state itself.  A *noise point* is an
    ``Annotation("noise", str(qubit))`` in the circuit IR; every backend
    XORs a seeded Bernoulli(``rate``) mask into that qubit's plane when it
    reaches the point.  :func:`insert_noise_points` places one point after
    each measurement (on the measured qubit) and after each top-level MBU
    block (on the just-reset garbage qubit) — the residual-error model for
    a faulty measurement apparatus.  Pass ``noise=NoiseConfig(rate, seed)``
    to :func:`repro.sim.simulate` (any backend) or to the bitplane/sharded
    runners directly.

Seeding contract: both mechanisms draw from their own
:class:`~repro.sim.outcomes.RandomOutcomes` stream, independent of the
measurement-outcome stream, so ``rate=0.0`` consumes *zero* flip entropy
and is bit-identical to no noise, and a fixed ``(seed, rate)`` produces
identical results across all execution strategies and every shard count
(channel draws go through the same full-width-mask slicing as outcome
draws; see ``docs/noise.md``).

:mod:`repro.pipeline.noise` builds the protocol success / postselection
analysis on top of these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..circuits.circuit import Circuit
from ..circuits.ops import Annotation, MBUBlock, Measurement, Operation
from ..sim.outcomes import OutcomeProvider, RandomOutcomes

__all__ = [
    "NoiseConfig",
    "NoisyOutcomes",
    "insert_noise_points",
    "noise_points",
]


@dataclass(frozen=True)
class NoiseConfig:
    """Bit-flip channel parameters: per-lane flip probability and seed.

    ``rate`` is the independent per-lane, per-noise-point flip probability;
    ``seed`` seeds the channel's own
    :class:`~repro.sim.outcomes.RandomOutcomes` stream (independent of the
    measurement-outcome stream).  ``rate=0.0`` is exactly no noise: the
    channel stream is never constructed, let alone consumed.  The dataclass
    is frozen and hashable so it can ride in shard-worker task tuples and
    memo keys unchanged.
    """

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"noise rate must lie in [0, 1], got {self.rate}")

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0


class NoisyOutcomes(OutcomeProvider):
    """Flip a wrapped provider's sampled outcomes at a seeded rate.

    Every outcome drawn from ``inner`` is XOR'd with an independent
    Bernoulli(``rate``) flip from a dedicated ``RandomOutcomes(seed)``
    stream — per lane for vectorized draws.  ``rate=0.0`` draws nothing
    from the flip stream, so the composite is bit-identical to the bare
    ``inner`` provider.

    The wrapper is shard-safe: ``clone()`` re-clones ``inner`` (via
    :func:`repro.sim.dispatch.clone_provider`) and re-seeds the flip
    stream, and both streams draw full-width masks under
    :class:`~repro.sim.dispatch.SlicedOutcomes`, so a fixed
    ``(inner seed, rate, seed)`` produces the same per-lane outcomes for
    every shard count.
    """

    def __init__(
        self, inner: OutcomeProvider, rate: float, seed: int = 0
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"flip rate must lie in [0, 1], got {rate}")
        self.inner = inner
        self.rate = rate
        self.seed = seed
        self._flips = RandomOutcomes(seed)

    def sample(self, p_one: float) -> int:
        outcome = self.inner.sample(p_one)
        if self.rate:
            outcome ^= self._flips.sample(self.rate)
        return outcome

    def sample_lanes(self, p_one: float, lanes: int) -> int:
        mask = self.inner.sample_lanes(p_one, lanes)
        if self.rate:
            mask ^= self._flips.sample_lanes(self.rate, lanes)
        return mask

    def reset(self) -> None:
        self.inner.reset()
        self._flips = RandomOutcomes(self.seed)

    def clone(self) -> "NoisyOutcomes":
        from ..sim.dispatch import clone_provider  # deferred: dispatch imports sim

        return NoisyOutcomes(clone_provider(self.inner), self.rate, self.seed)

    @property
    def consumed(self) -> Optional[int]:
        """Outcome events drawn, when the wrapped provider tracks them."""
        return getattr(self.inner, "consumed", None)


def noise_points(circuit: Circuit) -> Tuple[int, ...]:
    """The qubits targeted by the circuit's noise points, in stream order
    (one entry per ``Annotation('noise', q)``, top level only — where
    :func:`insert_noise_points` puts them)."""
    return tuple(
        int(op.label)
        for op in circuit.ops
        if isinstance(op, Annotation) and op.kind == "noise"
    )


def insert_noise_points(circuit: Circuit, name: str | None = None) -> Circuit:
    """A copy of ``circuit`` with a bit-flip noise point after every
    measurement event.

    Models a faulty measurement apparatus leaving a residual error on the
    qubit it touched: an ``Annotation("noise", str(q))`` is inserted after
    each top-level :class:`~repro.circuits.ops.Measurement` (on the
    measured qubit) and after each top-level
    :class:`~repro.circuits.ops.MBUBlock` (on the just-reset garbage
    qubit).  Coherently-uncomputed circuits have no measurements, hence no
    noise points — which is exactly the MBU-vs-coherent sensitivity
    comparison the pipeline's noise table draws.

    Points go at the top level only (never inside conditional or MBU
    bodies), so the noisy circuit stays shard-safe: every execution
    strategy and every shard count reaches every noise point.
    """
    out = circuit.copy_empty(
        name if name is not None else f"noisy({circuit.name})"
    )
    ops: List[Operation] = []
    for op in circuit.ops:
        ops.append(op)
        if isinstance(op, Measurement):
            ops.append(Annotation("noise", str(op.qubit)))
        elif isinstance(op, MBUBlock):
            ops.append(Annotation("noise", str(op.qubit)))
    out.extend(ops)
    return out
