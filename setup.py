"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`)
on environments whose setuptools predates built-in bdist_wheel support.
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
