"""Quickstart: build, simulate and cost a modular adder with MBU.

Run:  python examples/quickstart.py
"""

from repro.circuits import draw
from repro.modular import build_modadd
from repro.sim import RandomOutcomes, run_classical, simulate


def main() -> None:
    n, p = 8, 251  # eight-bit registers, modulus 251
    x, y = 200, 123

    # A CDKPM-based modular adder (prop 3.4), and its MBU version (thm 4.3).
    plain = build_modadd(n, p, family="cdkpm")
    mbu = build_modadd(n, p, family="cdkpm", mbu=True)

    out = run_classical(mbu.circuit, {"x": x, "y": y}, outcomes=RandomOutcomes(7))
    print(f"({x} + {y}) mod {p} = {out['y']}   (expected {(x + y) % p})")
    print(f"ancillas clean: t={out['t']} work={out['work']}")
    print()

    # The same circuit on 1024 basis inputs at once, via the vectorized
    # bit-plane backend of the simulate() dispatch API.
    xs = [(3 * i) % p for i in range(1024)]
    ys = [(7 * i + 1) % p for i in range(1024)]
    batch = simulate(mbu.circuit, {"x": xs, "y": ys}, backend="bitplane", batch=1024)
    ok = sum(
        got == (a + b) % p for got, a, b in zip(batch.registers["y"], xs, ys)
    )
    print(f"bitplane backend: {ok}/1024 lanes correct in one batched run")
    print(f"average per-lane Toffolis actually executed: {float(batch.tally.toffoli):.2f}")
    print()

    for name, built in [("without MBU", plain), ("with MBU   ", mbu)]:
        counts = built.counts("expected")
        print(
            f"{name}: qubits={built.logical_qubits:3d} "
            f"Toffoli={float(counts.toffoli):7.1f} "
            f"CNOT+CZ={float(counts.cnot_cz):7.1f} "
            f"measurements={float(counts.measurements):4.1f}"
        )
    saving = 1 - mbu.counts("expected").toffoli / plain.counts("expected").toffoli
    print(f"expected Toffoli saving from MBU: {100 * float(saving):.1f}%")
    print()

    # The structure at a glance (a tiny instance so the drawing fits).
    tiny = build_modadd(2, 3, family="cdkpm", mbu=True)
    print("n=2, p=3 MBU modular adder (fig 25's structure):")
    print(draw(tiny.circuit, max_width=160))


if __name__ == "__main__":
    main()
