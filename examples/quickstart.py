"""Quickstart: build, simulate and cost a modular adder with MBU.

Run:  python examples/quickstart.py
"""

from repro.circuits import draw
from repro.modular import build_modadd
from repro.sim import RandomOutcomes, run_classical


def main() -> None:
    n, p = 8, 251  # eight-bit registers, modulus 251
    x, y = 200, 123

    # A CDKPM-based modular adder (prop 3.4), and its MBU version (thm 4.3).
    plain = build_modadd(n, p, family="cdkpm")
    mbu = build_modadd(n, p, family="cdkpm", mbu=True)

    out = run_classical(mbu.circuit, {"x": x, "y": y}, outcomes=RandomOutcomes(7))
    print(f"({x} + {y}) mod {p} = {out['y']}   (expected {(x + y) % p})")
    print(f"ancillas clean: t={out['t']} work={out['work']}")
    print()

    for name, built in [("without MBU", plain), ("with MBU   ", mbu)]:
        counts = built.counts("expected")
        print(
            f"{name}: qubits={built.logical_qubits:3d} "
            f"Toffoli={float(counts.toffoli):7.1f} "
            f"CNOT+CZ={float(counts.cnot_cz):7.1f} "
            f"measurements={float(counts.measurements):4.1f}"
        )
    saving = 1 - mbu.counts("expected").toffoli / plain.counts("expected").toffoli
    print(f"expected Toffoli saving from MBU: {100 * float(saving):.1f}%")
    print()

    # The structure at a glance (a tiny instance so the drawing fits).
    tiny = build_modadd(2, 3, family="cdkpm", mbu=True)
    print("n=2, p=3 MBU modular adder (fig 25's structure):")
    print(draw(tiny.circuit, max_width=160))


if __name__ == "__main__":
    main()
