"""ASCII renders of the paper's circuit figures.

The paper's figures are constructions, not measurement plots; this script
regenerates their structure as circuit drawings straight from the builders:

* fig 5  — VBE plain adder;
* fig 8  — CDKPM ripple-carry adder;
* fig 13 — Gidney logical-AND adder (Mx = X-basis measurement, ?Z/?X =
           classically controlled correction);
* fig 21 — CDKPM comparator (half subtractor);
* fig 24 — the MBU lemma circuit (~M marks the MBU block);
* fig 25 — MBU modular addition.

Run:  python examples/draw_figures.py
"""

from repro.arithmetic import build_adder, build_comparator
from repro.circuits import Circuit, draw
from repro.mbu import emit_mbu_uncompute
from repro.modular import build_modadd


def show(title: str, circuit, width: int = 200) -> None:
    print(f"--- {title}")
    print(draw(circuit, max_width=width))
    print()


def fig24() -> Circuit:
    circ = Circuit("fig24")
    a = circ.add_register("x", 2)
    g = circ.add_register("g", 1)

    def oracle():
        circ.ccx(a[0], a[1], g[0])

    oracle()
    emit_mbu_uncompute(circ, g[0], oracle)
    return circ


def main() -> None:
    show("fig 5: VBE plain adder (n=2)", build_adder(2, "vbe").circuit)
    show("fig 8: CDKPM plain adder (n=2)", build_adder(2, "cdkpm").circuit)
    show("fig 13: Gidney logical-AND adder (n=2)", build_adder(2, "gidney").circuit)
    show("fig 21: CDKPM comparator (n=2)", build_comparator(2, "cdkpm").circuit)
    show("fig 24: the MBU lemma", fig24())
    show(
        "fig 25: MBU modular addition (n=2, p=3)",
        build_modadd(2, 3, "cdkpm", mbu=True).circuit,
        width=300,
    )


if __name__ == "__main__":
    main()
