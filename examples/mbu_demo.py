"""Lemma 4.1 live: measurement-based uncomputation on a superposition.

Builds a garbage qubit g = f(a) over a uniform superposition of a 3-qubit
register, uncomputes it with MBU, and shows on the statevector simulator
that (1) both measurement branches restore the state *with phases intact*,
and (2) the correction branch fires half of the time.

Run:  python examples/mbu_demo.py
"""

import collections

from repro.circuits import Circuit, count_gates
from repro.mbu import emit_mbu_uncompute
from repro.sim import RandomOutcomes, StatevectorSimulator


def build() -> Circuit:
    circ = Circuit("mbu-demo")
    a = circ.add_register("a", 3)
    g = circ.add_register("g", 1)
    for q in a:
        circ.h(q)

    def oracle() -> None:  # g ^= maj-ish boolean of a
        circ.ccx(a[0], a[1], g[0])
        circ.cx(a[2], g[0])

    oracle()  # compute the garbage
    emit_mbu_uncompute(circ, g[0], oracle)  # Lemma 4.1
    return circ


def main() -> None:
    circ = build()
    print("expected gate counts:", dict(count_gates(circ, "expected").counts))
    print("worst-case   counts:", dict(count_gates(circ, "worst").counts))
    print()

    # 1. state restoration, phases included
    sim = StatevectorSimulator(circ, outcomes=RandomOutcomes(1))
    sim.run()
    values = sim.register_values()
    print("final amplitudes (all equal => phases corrected):")
    for key, amp in sorted(values.items()):
        print(f"  a={key[0]} g={key[1]}: {amp:.4f}")
    print()

    # 2. the correction branch fires with probability 1/2
    outcomes = collections.Counter()
    for seed in range(2000):
        sim = StatevectorSimulator(circ, outcomes=RandomOutcomes(seed), tally=True)
        sim.run()
        fired = sim.bits[0] == 1
        outcomes["correction"] += fired
        outcomes["free"] += not fired
    print(f"correction branch frequency over 2000 runs: "
          f"{outcomes['correction'] / 2000:.3f}  (Lemma 4.1: 0.5)")


if __name__ == "__main__":
    main()
