"""Reproduce the paper's evaluation end to end: Tables 1-6 + savings + modexp.

Runs the sweep pipeline (cached circuit construction, worker pool,
Monte-Carlo expected-cost estimates with confidence intervals) and writes
versioned JSON + markdown artifacts.

Run:  python examples/reproduce_paper.py [--sizes 8 16 32] [--out artifacts]
      python examples/reproduce_paper.py --smoke --check tests/golden/sweep_smoke.json

See ``python examples/reproduce_paper.py --help`` for every knob, and
docs/reproduce.md for the walkthrough.
"""

import sys

from repro.pipeline.cli import main

if __name__ == "__main__":
    sys.exit(main())
