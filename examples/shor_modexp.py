"""Shor-style modular exponentiation on top of MBU modular adders.

The paper's closing motivation: MBU savings compound inside modular
multiplication and exponentiation.  This example

1. simulates |e>|1> -> |e>|a^e mod p> end-to-end on small registers
   (every value of a 3-bit exponent), and
2. extrapolates the expected-Toffoli budget to cryptographic sizes with
   and without MBU.

Run:  python examples/shor_modexp.py
"""

from repro.extensions import build_modexp, modexp_cost
from repro.sim import RandomOutcomes, run_classical


def main() -> None:
    n, p, a, n_exp = 4, 13, 6, 3
    print(f"simulating |e>|1> -> |e>|{a}^e mod {p}>  (n={n}, {n_exp}-bit exponent)")
    for e in range(1 << n_exp):
        built = build_modexp(n_exp, n, p, a, family="cdkpm", mbu=True)
        out = run_classical(built.circuit, {"e": e}, outcomes=RandomOutcomes(e))
        ok = "ok" if out["x"] == pow(a, e, p) else "MISMATCH"
        print(f"  e={e}: measured {out['x']:2d}, classical {pow(a, e, p):2d}  [{ok}]")

    built = build_modexp(n_exp, n, p, a, family="cdkpm", mbu=True)
    counts = built.counts("expected")
    print(f"\nsmall instance: {built.logical_qubits} qubits, "
          f"{float(counts.toffoli):.1f} expected Toffolis, "
          f"{float(counts.measurements):.0f} measurements")

    print("\ncryptographic-scale estimates (2n-bit exponent, CDKPM adders):")
    print("  n      Tof (plain)      Tof (MBU)    saving")
    for bits in (256, 1024, 2048):
        plain = modexp_cost(2 * bits, bits, "cdkpm", mbu=False)
        mbu = modexp_cost(2 * bits, bits, "cdkpm", mbu=True)
        saving = 100 * float(1 - mbu["toffoli"] / plain["toffoli"])
        print(f"  {bits:5d}  {float(plain['toffoli']):>13.3e}  "
              f"{float(mbu['toffoli']):>13.3e}  {saving:5.1f}%")


if __name__ == "__main__":
    main()
