"""Regenerate every evaluation table of the paper (Tables 1-6).

Run:  python examples/regenerate_tables.py [n]
"""

import sys

from repro.resources import (
    mbu_savings,
    render_rows,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    print(render_rows(table1(n), f"Table 1 — modular addition (n={n}, p=2^n-1)"))
    print()
    print(render_rows(table2(n), f"Table 2 — plain adders (n={n})"))
    print()
    print(render_rows(table3(n), f"Table 3 — controlled addition (n={n})"))
    print()
    print(render_rows(table4(n), f"Table 4 — addition by a constant (n={n})"))
    print()
    print(render_rows(table5(n), f"Table 5 — controlled addition by a constant (n={n})"))
    print()
    print(render_rows(table6(n), f"Table 6 — comparators (n={n})"))
    print()
    savings = mbu_savings(n)
    print("Section 1.1 headline — expected-Toffoli savings from MBU:")
    for key, value in savings.items():
        print(f"  {key:10s} {100 * value:5.1f}%")


if __name__ == "__main__":
    main()
